package core

import (
	"testing"

	"silvervale/internal/cluster"
	"silvervale/internal/corpus"
)

// The tests in this file assert the qualitative findings of the paper's
// evaluation (Section V) — the shapes DESIGN.md commits to reproducing.

func divergeOrFatal(t *testing.T, a, b *Index, metric string) Divergence {
	t.Helper()
	d, err := testEngine.Diverge(a, b, metric)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSelfDivergenceIsZero(t *testing.T) {
	idxs, _ := indexAll(t, "babelstream", Options{})
	for m, idx := range idxs {
		if err := SelfCheck(idx); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

// TestOpenMPSemanticExceedsPerceived: "The directive-based OpenMP has a
// consistently higher T_sem divergence when compared to T_src or other
// perceived metrics" — pragmas are cheap to write but the compiler ascribes
// rich semantics to them.
func TestOpenMPSemanticExceedsPerceived(t *testing.T) {
	for _, app := range []string{"tealeaf", "babelstream"} {
		idxs, _ := indexAll(t, app, Options{})
		serial := idxs["serial"]
		omp := idxs["omp"]
		tsem := divergeOrFatal(t, serial, omp, MetricTsem).Norm
		tsrc := divergeOrFatal(t, serial, omp, MetricTsrc).Norm
		if tsem <= tsrc {
			t.Errorf("%s: OpenMP tsem (%.4f) must exceed tsrc (%.4f)", app, tsem, tsrc)
		}
		target := idxs["omp-target"]
		tsemT := divergeOrFatal(t, serial, target, MetricTsem).Norm
		tsrcT := divergeOrFatal(t, serial, target, MetricTsrc).Norm
		if tsemT <= tsrcT {
			t.Errorf("%s: OpenMP target tsem (%.4f) must exceed tsrc (%.4f)", app, tsemT, tsrcT)
		}
	}
}

// TestOffloadDivergenceOrdering: Fig. 9 — among offload models, OpenMP
// target has the lowest divergence from serial; first-party CUDA/HIP sit in
// the middle; SYCL (header-heavy) is highest.
func TestOffloadDivergenceOrdering(t *testing.T) {
	idxs, order := indexAll(t, "tealeaf", Options{})
	for _, metric := range []string{MetricTsrc, MetricTsem} {
		from, err := testEngine.FromBase(idxs, "serial", order, metric)
		if err != nil {
			t.Fatal(err)
		}
		offload := []string{"cuda", "hip", "sycl-acc", "sycl-usm"}
		for _, m := range offload {
			if from["omp-target"] >= from[m] {
				t.Errorf("%s: omp-target (%.3f) should diverge less than %s (%.3f)",
					metric, from["omp-target"], m, from[m])
			}
		}
		if from["sycl-acc"] <= from["cuda"] {
			t.Errorf("%s: SYCL accessors (%.3f) should diverge more than CUDA (%.3f)",
				metric, from["sycl-acc"], from["cuda"])
		}
	}
}

// TestDeclarativeModelsLowDivergence: "declarative models such as OpenMP
// and StdPar tend to have a lower divergence from serial when compared to
// the rest".
func TestDeclarativeModelsLowDivergence(t *testing.T) {
	idxs, order := indexAll(t, "tealeaf", Options{})
	from, err := testEngine.FromBase(idxs, "serial", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	for _, declarative := range []string{"omp", "omp-target"} {
		for _, heavy := range []string{"cuda", "hip", "kokkos", "sycl-acc", "sycl-usm"} {
			if from[declarative] >= from[heavy] {
				t.Errorf("declarative %s (%.3f) should be below %s (%.3f)",
					declarative, from[declarative], heavy, from[heavy])
			}
		}
	}
	if from["std-par"] >= from["cuda"] {
		t.Errorf("std-par (%.3f) should be below cuda (%.3f)", from["std-par"], from["cuda"])
	}
}

// TestInliningJumpsForLibraryModels: Fig. 7/8 — "for library-based ...
// models, we see a huge jump in divergence as foreign code is brought in to
// the tree. For OpenMP, and to a lesser degree CUDA, both show very little
// change for T_sem+i"; HIP sits in between because of its runtime headers.
func TestInliningJumpsForLibraryModels(t *testing.T) {
	idxs, order := indexAll(t, "tealeaf", Options{})
	sem, err := testEngine.FromBase(idxs, "serial", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	semI, err := testEngine.FromBase(idxs, "serial", order, MetricTsemI)
	if err != nil {
		t.Fatal(err)
	}
	jump := func(m string) float64 { return semI[m] - sem[m] }
	for _, lib := range []string{"kokkos", "sycl-usm", "tbb"} {
		if jump(lib) <= jump("omp")+0.01 {
			t.Errorf("%s inlining jump (%.4f) should dwarf OpenMP's (%.4f)", lib, jump(lib), jump("omp"))
		}
		if jump(lib) <= jump("cuda") {
			t.Errorf("%s inlining jump (%.4f) should exceed CUDA's (%.4f)", lib, jump(lib), jump("cuda"))
		}
	}
	if jump("hip") <= jump("cuda") {
		t.Errorf("HIP's runtime headers should make its jump (%.4f) exceed CUDA's (%.4f)",
			jump("hip"), jump("cuda"))
	}
	if jump("omp") > 0.01 {
		t.Errorf("OpenMP should barely move under inlining, got %.4f", jump("omp"))
	}
}

// TestOffloadIRInflation: "T_ir seems to misbehave for offload models ...
// the obtained IR contains multiple layers of driver code".
func TestOffloadIRInflation(t *testing.T) {
	idxs, order := indexAll(t, "tealeaf", Options{})
	from, err := testEngine.FromBase(idxs, "serial", order, MetricTir)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []string{"cuda", "hip", "sycl-acc", "sycl-usm"} {
		if from[off] <= from["omp"] {
			t.Errorf("offload %s T_ir (%.3f) should exceed host omp (%.3f)",
				off, from[off], from["omp"])
		}
	}
	if from["omp-target"] <= from["omp"] {
		t.Errorf("omp-target T_ir (%.3f) should exceed host omp (%.3f)",
			from["omp-target"], from["omp"])
	}
}

// TestMigrationCostFromCUDA: Section V.D — "The divergence when starting
// from serial is lower when compared to starting from CUDA. This is most
// obviously seen with the T_sem metric": CUDA already encodes
// platform-specific semantics other models don't share.
func TestMigrationCostFromCUDA(t *testing.T) {
	idxs, order := indexAll(t, "tealeaf", Options{})
	fromSerial, err := testEngine.FromBase(idxs, "serial", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	fromCUDA, err := testEngine.FromBase(idxs, "cuda", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	targets := []string{"omp-target", "kokkos", "sycl-acc", "sycl-usm"}
	higher := 0
	for _, m := range targets {
		if fromCUDA[m] > fromSerial[m] {
			higher++
		}
	}
	if higher < 3 {
		t.Errorf("porting from CUDA should usually cost more than from serial; only %d/%d targets agree\nserial=%v\ncuda=%v",
			higher, len(targets), fromSerial, fromCUDA)
	}
	// HIP is the exception that proves the rule: CUDA→HIP is famously cheap
	if fromCUDA["hip"] >= fromSerial["hip"] {
		t.Errorf("CUDA→HIP (%.3f) should be far below serial→HIP (%.3f)",
			fromCUDA["hip"], fromSerial["hip"])
	}
}

// TestModelFamilyClustering: Fig. 4 — variants and related designs cluster:
// SYCL with SYCL, CUDA with HIP, serial with OpenMP, TBB with StdPar.
func TestModelFamilyClustering(t *testing.T) {
	idxs, order := indexAll(t, "babelstream", Options{})
	m, err := testEngine.Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	dist := cluster.EuclideanFromMatrix(m)
	root, err := cluster.Agglomerate(order, dist)
	if err != nil {
		t.Fatal(err)
	}
	closerThan := func(a, b, c string) {
		t.Helper()
		hab, err := cluster.Cophenetic(root, a, b)
		if err != nil {
			t.Fatal(err)
		}
		hac, err := cluster.Cophenetic(root, a, c)
		if err != nil {
			t.Fatal(err)
		}
		if hab >= hac {
			t.Errorf("%s should join %s (h=%.3f) before %s (h=%.3f)\n%s",
				a, b, hab, c, hac, cluster.Render(root))
		}
	}
	closerThan("sycl-acc", "sycl-usm", "cuda")
	closerThan("cuda", "hip", "sycl-acc")
	closerThan("serial", "omp", "cuda")
	closerThan("tbb", "std-par", "sycl-acc")
}

// TestSLOCClusteringUninformative: "SLOC and LLOC did not group related
// models together" — at minimum, the SLOC dendrogram must not reproduce the
// family structure T_sem finds (here: the CUDA/HIP pairing survives but
// family pairs under SLOC are not all preserved; we assert the weaker,
// robust property that SLOC ordering disagrees with T_sem somewhere).
func TestSLOCClusteringUninformative(t *testing.T) {
	idxs, order := indexAll(t, "babelstream", Options{})
	mSem, err := testEngine.Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	mSloc, err := testEngine.Matrix(idxs, order, MetricSLOC)
	if err != nil {
		t.Fatal(err)
	}
	semRoot, _ := cluster.Agglomerate(order, cluster.EuclideanFromMatrix(mSem))
	slocRoot, _ := cluster.Agglomerate(order, cluster.EuclideanFromMatrix(mSloc))
	same := true
	for _, pair := range [][2]string{{"serial", "omp"}, {"cuda", "hip"}, {"sycl-acc", "sycl-usm"}, {"tbb", "std-par"}} {
		hs, _ := cluster.Cophenetic(semRoot, pair[0], pair[1])
		hl, _ := cluster.Cophenetic(slocRoot, pair[0], pair[1])
		// compare rank: is the pair's merge among the first merges?
		if (hs == 0) != (hl == 0) {
			same = false
		}
		_ = hs
		_ = hl
	}
	// robust disagreement check: the leaf orders differ
	if equalStrings(semRoot.Leaves(), slocRoot.Leaves()) && same {
		t.Error("SLOC clustering should not reproduce the semantic clustering")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFortranShapes: Section V.B — OpenACC introduces no parallel tokens at
// the T_sem level (GCC quality-of-implementation), so the ACC variants are
// T_sem-identical to their base forms while remaining distinct in the
// perceived metrics; and overall the Fortran models are more T_sem-similar
// than the C++ BabelStream models.
func TestFortranShapes(t *testing.T) {
	idxs, order := indexAll(t, "babelstream-fortran", Options{})
	seq := idxs["f-sequential"]
	acc := idxs["f-acc"]
	if d := divergeOrFatal(t, seq, acc, MetricTsem).Norm; d != 0 {
		t.Errorf("OpenACC must be invisible at T_sem, got %.4f", d)
	}
	if d := divergeOrFatal(t, seq, acc, MetricTsrc).Norm; d == 0 {
		t.Error("OpenACC must still be visible at T_src")
	}
	if d := divergeOrFatal(t, seq, acc, MetricSource).Norm; d == 0 {
		t.Error("OpenACC must still be visible in Source")
	}
	arr := idxs["f-array"]
	accArr := idxs["f-acc-array"]
	if d := divergeOrFatal(t, arr, accArr, MetricTsem).Norm; d != 0 {
		t.Errorf("OpenACC array variant must be T_sem-identical to array form, got %.4f", d)
	}

	// Fortran models are overall more T_sem-similar than the C++ ones
	fFrom, err := testEngine.FromBase(idxs, "f-sequential", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	cIdxs, cOrder := indexAll(t, "babelstream", Options{})
	cFrom, err := testEngine.FromBase(cIdxs, "serial", cOrder, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if maxOf(fFrom) >= maxOf(cFrom) {
		t.Errorf("Fortran max T_sem divergence (%.3f) should stay below C++ (%.3f)",
			maxOf(fFrom), maxOf(cFrom))
	}
}

func maxOf(m map[string]float64) float64 {
	max := 0.0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// TestSYCLSourcePPExtreme: "SYCL, when using the CPP modifier (Source+pp),
// exhibits extreme divergence from the serial model" — the preprocessed
// SYCL unit balloons relative to its raw source.
func TestSYCLSourcePPExtreme(t *testing.T) {
	idxs, _ := indexAll(t, "babelstream", Options{})
	blowup := func(m string) float64 {
		raw, pp := 0, 0
		for i := range idxs[m].Units {
			raw += len(idxs[m].Units[i].SourceLines)
			pp += len(idxs[m].Units[i].SourceLinesPP)
		}
		return float64(pp) / float64(raw)
	}
	if blowup("sycl-acc") <= blowup("serial") || blowup("sycl-acc") <= blowup("omp") {
		t.Errorf("SYCL preprocessing blow-up (%.2fx) should exceed serial (%.2fx) and omp (%.2fx)",
			blowup("sycl-acc"), blowup("serial"), blowup("omp"))
	}
	serial := idxs["serial"]
	d := divergeOrFatal(t, serial, idxs["sycl-acc"], MetricSourcePP).Norm
	if d < 0.9 {
		t.Errorf("SYCL Source+pp divergence should saturate the heatmap, got %.3f", d)
	}
}

// TestCoverageVariantShrinksDivergence: masking unexecuted regions can only
// remove divergence-carrying nodes; the masked trees are no larger.
func TestCoverageVariantShrinks(t *testing.T) {
	app, _ := corpus.AppByName("babelstream")
	cb, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := RunCoverage(cb)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := IndexCodebase(cb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	masked, err := IndexCodebase(cb, Options{Coverage: prof})
	if err != nil {
		t.Fatal(err)
	}
	ps := TreeSizes(plain)
	ms := TreeSizes(masked)
	for _, metric := range TreeMetrics() {
		if ms[metric] > ps[metric] {
			t.Errorf("%s: coverage mask grew the tree (%d > %d)", metric, ms[metric], ps[metric])
		}
	}
	if ms[MetricTsem] == ps[MetricTsem] {
		t.Error("coverage mask should remove at least some unexecuted nodes")
	}
}

// TestKeepSystemHeadersGrowsUnits: Eq. 1 includes system headers; masking
// is an analysis-phase choice.
func TestKeepSystemHeadersGrowsUnits(t *testing.T) {
	app, _ := corpus.AppByName("babelstream")
	cb, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := IndexCodebase(cb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kept, err := IndexCodebase(cb, Options{KeepSystemHeaders: true})
	if err != nil {
		t.Fatal(err)
	}
	if TreeSizes(kept)[MetricTsem] <= TreeSizes(masked)[MetricTsem] {
		t.Error("keeping system headers should grow T_sem")
	}
}
