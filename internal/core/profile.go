package core

import (
	"context"
	"fmt"

	"silvervale/internal/corpus"
	"silvervale/internal/coverage"
	"silvervale/internal/interp"
	"silvervale/internal/obs"
)

// RunProfile is the outcome of one profiled interpreter execution: the
// coverage mask and the per-function cost profile from the same single
// pass, so measured-Φ sweeps never re-run an app the coverage workflow
// already executed (DESIGN.md §11).
type RunProfile struct {
	// Coverage is the executed-line mask (what RunCoverage returns).
	Coverage *coverage.Profile
	// Cost is the per-function cost profile of the same execution.
	Cost *interp.Profile
	// Output is the program's captured printf output (validation lines).
	Output []string
	// Steps is the interpreter step count.
	Steps int
	// Err records a non-fatal execution fault. Profiled runs are lenient —
	// ports whose device abstractions the serial dialect cannot model
	// (SYCL accessors) keep going past subscript faults — but a run can
	// still end early (step limit); the partial profile is kept and the
	// fault is surfaced here rather than discarding the measurement.
	Err error
}

// ProfileCodebase executes a C++ codebase once in the interpreter with
// cost profiling enabled and returns both the coverage profile and the
// cost profile from that single pass. Execution is lenient (see
// interp.Options.Lenient) so every port in the corpus completes
// deterministically. The optional span receives an "interp.run" child
// with per-kernel spans and interp.* counters.
func ProfileCodebase(cb *corpus.Codebase, span *obs.Span) (*RunProfile, error) {
	return ProfileCodebaseCtx(context.Background(), cb, span)
}

// ProfileCodebaseCtx is ProfileCodebase under a cancellation context. The
// interpreter run itself is a single indivisible task (it is never split
// across workers), so cancellation is checked at the two scheduling
// boundaries around it — before the combined parse and before execution —
// matching the engine's grant-boundary rule: a granted task runs to
// completion, a canceled request never starts one.
func ProfileCodebaseCtx(ctx context.Context, cb *corpus.Codebase, span *obs.Span) (*RunProfile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	unit, err := combinedUnit(cb)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rsp := span.Start("interp.run").
		Arg("app", cb.App).Arg("model", string(cb.Model))
	out, runErr := interp.Run(unit, interp.Options{
		Profile: true,
		Lenient: true,
		Span:    rsp,
	})
	rsp.End()
	if out == nil {
		return nil, fmt.Errorf("core: profile %s/%s: %w", cb.App, cb.Model, runErr)
	}
	return &RunProfile{
		Coverage: coverage.NewProfile(out.Coverage),
		Cost:     out.Profile,
		Output:   out.Output,
		Steps:    out.Steps,
		Err:      runErr,
	}, nil
}
