package core

import (
	"math"
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/store"
	"silvervale/internal/ted"
)

// buildMatrixWithStore generates every babelstream model, indexes it
// through an engine backed by st, and returns the T_sem divergence matrix
// plus the model order.
func buildMatrixWithStore(t *testing.T, workers int, st *store.Store) ([][]float64, []string) {
	t.Helper()
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineStore(workers, ted.NewCache(), nil, st)
	idxs := map[string]*Index{}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := e.IndexCodebase(cb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		idxs[string(m)] = idx
		order = append(order, string(m))
	}
	mat, err := e.Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	return mat, order
}

// sameBits reports bit-exact equality of two matrices — stricter than ==
// (it distinguishes -0 from 0), which is the determinism contract the
// warm start must honour: a store-served distance feeds the exact same
// float pipeline as a computed one.
func sameBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestWarmStartMatrixDeterminism is the determinism gate the artifact
// store ships under: a matrix warm-started from disk must be bit-identical
// to the cold matrix at every worker count. Run under -race this also
// exercises concurrent store lookups/promotions from the worker pool.
func TestWarmStartMatrixDeterminism(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldOrder := buildMatrixWithStore(t, 2, st)
	if s := st.Stats(); s.Hits != 0 {
		t.Fatalf("cold run should not hit the store: %+v", s)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		warm, order := buildMatrixWithStore(t, workers, st)
		stats := st.Stats()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if len(order) != len(coldOrder) {
			t.Fatalf("workers=%d: order length changed", workers)
		}
		for i := range order {
			if order[i] != coldOrder[i] {
				t.Fatalf("workers=%d: model order changed", workers)
			}
		}
		if !sameBits(cold, warm) {
			t.Fatalf("workers=%d: warm matrix differs from cold", workers)
		}
		if stats.Hits == 0 {
			t.Fatalf("workers=%d: warm run never hit the store: %+v", workers, stats)
		}
		if stats.CorruptSkipped != 0 {
			t.Fatalf("workers=%d: corrupt records on a clean store: %+v", workers, stats)
		}
	}
}

// TestEngineIndexWarmStart pins the index tier: the second engine serves
// the codebase from the store (one index-tier hit) and the reloaded index
// diverges identically from a fresh one under every metric.
func TestEngineIndexWarmStart(t *testing.T) {
	dir := t.TempDir()
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	other, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineStore(0, ted.NewCache(), nil, st)
	if e.Store() != st {
		t.Fatal("engine does not expose its store")
	}
	cold, err := e.IndexCodebase(cb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldBase, err := e.IndexCodebase(other, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2 := NewEngineStore(0, ted.NewCache(), nil, st2)
	warm, err := e2.IndexCodebase(cb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmBase, err := e2.IndexCodebase(other, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Hits < 2 {
		t.Fatalf("warm run should hit the index tier twice, got %+v", s)
	}
	for _, metric := range Metrics() {
		dc, err := Diverge(coldBase, cold, metric)
		if err != nil {
			t.Fatal(err)
		}
		dw, err := Diverge(warmBase, warm, metric)
		if err != nil {
			t.Fatal(err)
		}
		if dc != dw {
			t.Fatalf("%s: warm divergence %+v differs from cold %+v", metric, dw, dc)
		}
	}
}

// TestIndexWarmStartPerOptionsDigest pins the per-options keying that
// replaced the old all-or-nothing gate: idx records carry the options
// digest, so KeepSystemHeaders (and coverage-masked) runs warm-start from
// their own records — and a record written under one option set is never
// served to another.
func TestIndexWarmStartPerOptionsDigest(t *testing.T) {
	dir := t.TempDir()
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		t.Fatal(err)
	}
	optsA := Options{}
	optsB := Options{KeepSystemHeaders: true}
	if optsA.Digest() == optsB.Digest() {
		t.Fatal("option digests must distinguish KeepSystemHeaders")
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineStore(0, ted.NewCache(), nil, st)
	coldA, err := e.IndexCodebase(cb, optsA)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The default-options record must not satisfy a KeepSystemHeaders
	// lookup: cross-contamination here would serve the wrong index.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngineStore(0, ted.NewCache(), nil, st2)
	coldB, err := e2.IndexCodebase(cb, optsB)
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Hits != 0 {
		t.Fatalf("KeepSystemHeaders lookup was served another option set's record: %+v", s)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Each option set warm-starts from its own record.
	st3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	e3 := NewEngineStore(0, ted.NewCache(), nil, st3)
	warmA, err := e3.IndexCodebase(cb, optsA)
	if err != nil {
		t.Fatal(err)
	}
	warmB, err := e3.IndexCodebase(cb, optsB)
	if err != nil {
		t.Fatal(err)
	}
	if s := st3.Stats(); s.Hits < 2 {
		t.Fatalf("warm run should hit the index tier once per option set: %+v", s)
	}
	if warmA.Opts != coldA.Opts || warmB.Opts != coldB.Opts {
		t.Fatal("warm index carries the wrong options digest")
	}
	for i := range coldA.Units {
		if warmA.Units[i].SrcHash != coldA.Units[i].SrcHash {
			t.Fatalf("default-options unit %d changed identity across warm start", i)
		}
	}
	for i := range coldB.Units {
		if warmB.Units[i].SrcHash != coldB.Units[i].SrcHash {
			t.Fatalf("keep-system unit %d changed identity across warm start", i)
		}
	}
}

// TestCodebaseContentHashSensitivity: the hash must move when anything
// that determines the index moves, and stay put when nothing does.
func TestCodebaseContentHashSensitivity(t *testing.T) {
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		t.Fatal(err)
	}
	base := CodebaseContentHash(cb)
	again, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if CodebaseContentHash(again) != base {
		t.Fatal("regenerating the same codebase changed the hash")
	}
	for name := range cb.Files {
		cb.Files[name] += "\n// touched"
		if CodebaseContentHash(cb) == base {
			t.Fatalf("editing %s did not change the hash", name)
		}
		break
	}
	cb2, err := corpus.Generate(app, corpus.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	if CodebaseContentHash(cb2) == base {
		t.Fatal("different model hashed equal")
	}
}
