package core

import (
	"os"
	"path/filepath"
	"testing"

	"silvervale/internal/compdb"
	"silvervale/internal/corpus"
)

// writeCodebase materialises a generated codebase on disk with its
// synthesized compile_commands.json, as the CLI `generate` command does.
func writeCodebase(t *testing.T, cb *corpus.Codebase) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range cb.Files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := cb.CompileCommands(dir).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "compile_commands.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDiskRoundTrip: generate → write to disk → ingest through the
// compilation-database front door → the re-indexed codebase is
// metric-identical to the in-memory one.
func TestDiskRoundTrip(t *testing.T) {
	app, _ := corpus.AppByName("babelstream")
	for _, model := range []corpus.Model{corpus.Serial, corpus.OpenMP, corpus.CUDA} {
		cb, err := corpus.Generate(app, model)
		if err != nil {
			t.Fatal(err)
		}
		dir := writeCodebase(t, cb)
		diskIdx, err := IngestDirectory(dir, Options{})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		memIdx, err := IndexCodebase(cb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// roles differ (disk uses file stems), so compare unit-by-unit
		if len(diskIdx.Units) != len(memIdx.Units) {
			t.Fatalf("%s: units %d vs %d", model, len(diskIdx.Units), len(memIdx.Units))
		}
		byFile := map[string]*UnitIndex{}
		for i := range memIdx.Units {
			byFile[memIdx.Units[i].File] = &memIdx.Units[i]
		}
		for i := range diskIdx.Units {
			du := &diskIdx.Units[i]
			mu, ok := byFile[du.File]
			if !ok {
				t.Fatalf("%s: unexpected unit %q", model, du.File)
			}
			if du.SLOC != mu.SLOC || du.LLOC != mu.LLOC {
				t.Fatalf("%s %s: SLOC/LLOC %d/%d vs %d/%d",
					model, du.File, du.SLOC, du.LLOC, mu.SLOC, mu.LLOC)
			}
			for _, metric := range TreeMetrics() {
				if du.Trees[metric].Size() != mu.Trees[metric].Size() {
					t.Fatalf("%s %s: %s tree %d vs %d nodes", model, du.File, metric,
						du.Trees[metric].Size(), mu.Trees[metric].Size())
				}
			}
		}
	}
}

func TestLoadCodebaseModelDetection(t *testing.T) {
	app, _ := corpus.AppByName("babelstream")
	cb, _ := corpus.Generate(app, corpus.CUDA)
	dir := writeCodebase(t, cb)
	db, err := compdb.Load(filepath.Join(dir, "compile_commands.json"))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCodebase(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Model != corpus.CUDA {
		t.Fatalf("model detected as %q, want cuda", loaded.Model)
	}
	if !loaded.System["cmath"] {
		t.Fatal("standard headers must be re-flagged system on ingest")
	}
}

func TestIngestErrors(t *testing.T) {
	if _, err := IngestDirectory(t.TempDir(), Options{}); err == nil {
		t.Fatal("expected error for missing compile_commands.json")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "compile_commands.json"),
		[]byte(`[{"directory": "/", "command": "cc -c gone.c", "file": "gone.c"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := IngestDirectory(dir, Options{}); err == nil {
		t.Fatal("expected error for missing unit file")
	}
	if _, err := LoadCodebase(dir, &compdb.DB{}); err == nil {
		t.Fatal("expected error for empty database")
	}
}
