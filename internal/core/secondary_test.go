package core

import (
	"testing"

	"silvervale/internal/corpus"
)

func TestDepGraphAndCoupling(t *testing.T) {
	app, _ := corpus.AppByName("babelstream")
	cb, err := corpus.Generate(app, corpus.SYCLACC)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDepGraph(cb, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Deps) != 2 {
		t.Fatalf("deps = %v", g.Deps)
	}
	// both units include kernels.h and the sycl runtime header
	foundSycl := false
	for _, deps := range g.Deps {
		for _, d := range deps {
			if d == "sycl/sycl.hpp" {
				foundSycl = true
			}
		}
	}
	if !foundSycl {
		t.Fatalf("model header missing from dependency graph: %v", g.Deps)
	}
	c := g.Coupling()
	if c <= 0 || c > 1.5 {
		t.Fatalf("coupling = %v", c)
	}
	// keeping system headers can only add dependencies
	gAll, err := BuildDepGraph(cb, true)
	if err != nil {
		t.Fatal(err)
	}
	for u, deps := range g.Deps {
		if len(gAll.Deps[u]) < len(deps) {
			t.Fatal("keepSystem lost dependencies")
		}
	}
}

func TestCouplingSharedHeadersCoupleTighter(t *testing.T) {
	app, _ := corpus.AppByName("babelstream")
	serial, _ := corpus.Generate(app, corpus.Serial)
	sycl, _ := corpus.Generate(app, corpus.SYCLACC)
	gs, err := BuildDepGraph(serial, false)
	if err != nil {
		t.Fatal(err)
	}
	gy, err := BuildDepGraph(sycl, false)
	if err != nil {
		t.Fatal(err)
	}
	// the SYCL port's units share the model runtime header in addition to
	// kernels.h, coupling them at least as tightly as serial
	if gy.Coupling() < gs.Coupling() {
		t.Fatalf("sycl coupling %v < serial %v", gy.Coupling(), gs.Coupling())
	}
}

func TestCouplingDegenerate(t *testing.T) {
	g := &DepGraph{Deps: map[string][]string{"one.c": {"a.h"}}}
	if g.Coupling() != 0 {
		t.Fatal("single unit has no coupling")
	}
	g2 := &DepGraph{Deps: map[string][]string{"a.c": nil, "b.c": nil}}
	if g2.Coupling() != 0 {
		t.Fatal("no dependencies, no coupling")
	}
}

func TestTreeComplexity(t *testing.T) {
	idxs, _ := indexAll(t, "babelstream", Options{})
	serial := TreeComplexity(idxs["serial"], MetricTsem)
	sycl := TreeComplexity(idxs["sycl-acc"], MetricTsem)
	if serial.Nodes == 0 || serial.Depth == 0 || serial.Leaves == 0 {
		t.Fatalf("degenerate complexity: %+v", serial)
	}
	if serial.Branching <= 1 {
		t.Fatalf("branching = %v", serial.Branching)
	}
	if serial.Entropy <= 0 {
		t.Fatal("entropy must be positive")
	}
	// the templated SYCL surface is structurally richer on every axis
	if sycl.Nodes <= serial.Nodes || sycl.Entropy <= serial.Entropy {
		t.Fatalf("SYCL should be more complex: sycl=%+v serial=%+v", sycl, serial)
	}
	// unknown metric: zero-valued result, no panic
	zero := TreeComplexity(idxs["serial"], "nope")
	if zero.Nodes != 0 {
		t.Fatal("unknown metric should be empty")
	}
}
