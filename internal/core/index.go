// Package core implements the paper's primary contribution: the Tree-Based
// Model Divergence (TBMD) metric and its surrounding pipeline — indexing a
// codebase into semantic-bearing trees (T_src, T_sem, T_sem+i, T_ir) plus
// the perceived metrics (SLOC, LLOC, Source), and computing relative
// divergences between codebases per Eq. (2)–(7).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"silvervale/internal/corpus"
	"silvervale/internal/coverage"
	"silvervale/internal/interp"
	"silvervale/internal/ir"
	"silvervale/internal/minic"
	"silvervale/internal/minifortran"
	"silvervale/internal/obs"
	"silvervale/internal/sloc"
	"silvervale/internal/store"
	"silvervale/internal/tree"
)

// Metric identifiers (rows of Table I plus the pp variants).
const (
	MetricSLOC     = "sloc"
	MetricLLOC     = "lloc"
	MetricSource   = "source"
	MetricSourcePP = "source+pp"
	MetricTsrc     = "tsrc"
	MetricTsrcPP   = "tsrc+pp"
	MetricTsem     = "tsem"
	MetricTsemI    = "tsem+i"
	MetricTir      = "tir"
)

// Metrics lists all metric identifiers in Table I order.
func Metrics() []string {
	return []string{
		MetricSLOC, MetricLLOC, MetricSource, MetricSourcePP,
		MetricTsrc, MetricTsrcPP, MetricTsem, MetricTsemI, MetricTir,
	}
}

// TreeMetrics lists the tree-based TBMD metrics.
func TreeMetrics() []string {
	return []string{MetricTsrc, MetricTsrcPP, MetricTsem, MetricTsemI, MetricTir}
}

// UnitIndex is the indexed form of one unit (Eq. 1: source file plus
// dependencies).
type UnitIndex struct {
	File string
	Role string

	SLOC int
	LLOC int

	SourceLines   []string // normalised lines of the unit (pre-preprocessor)
	SourceLinesPP []string // after preprocessing (macro expansion, includes)

	// LineFiles/LineNums attribute each entry of SourceLines back to its
	// original file and line, enabling the +coverage variants of the
	// perceived metrics.
	LineFiles []string
	LineNums  []int

	Trees map[string]*tree.Node // tsrc, tsrc+pp, tsem, tsem+i, tir

	// Incremental-recomputation keys (DESIGN.md §12). Deps is every file
	// whose content this unit's indexed form depends on — the root plus
	// the full spliced include closure in first-include order, system
	// files included (their macros expand into the unit). MissingDeps are
	// include targets that did not resolve; a file appearing under one of
	// those names would change the preprocess result, so their continued
	// absence is part of the key. SrcHash is the content hash over all of
	// them — the frontend-reuse key: an incremental reindex reuses this
	// unit verbatim exactly when the hash recomputed over the new file set
	// matches.
	Deps        []string
	MissingDeps []string
	SrcHash     store.ContentHash

	// FPs memoises each tree's content fingerprint; LinesHash and
	// LinesPPHash address the normalised line sets. All are filled by the
	// indexing pipeline (and restored by IndexFromDB); hand-built units
	// may leave them zero, in which case consumers recompute on the fly.
	FPs         map[string]tree.Fingerprint
	LinesHash   store.ContentHash
	LinesPPHash store.ContentHash
}

// TreeFingerprint returns the content fingerprint of the unit's tree under
// a metric, preferring the memoised value recorded at index time.
func (u *UnitIndex) TreeFingerprint(metric string) tree.Fingerprint {
	if fp, ok := u.FPs[metric]; ok {
		return fp
	}
	return u.Trees[metric].Fingerprint()
}

// sourceHash returns the content hash of the unit's normalised line set
// (pre- or post-preprocessor), preferring the memoised value.
func (u *UnitIndex) sourceHash(pp bool) store.ContentHash {
	if pp {
		if u.LinesPPHash != (store.ContentHash{}) {
			return u.LinesPPHash
		}
		return linesHash(u.SourceLinesPP)
	}
	if u.LinesHash != (store.ContentHash{}) {
		return u.LinesHash
	}
	return linesHash(u.SourceLines)
}

// Index is the indexed form of a whole codebase.
type Index struct {
	Codebase string
	Model    string
	Lang     corpus.Lang
	// Opts is the digest of the Options the index was built under
	// (Options.Digest). Incremental reuse and the store's index tier both
	// require it to match before any cached unit is served.
	Opts  store.ContentHash
	Units []UnitIndex
}

// Options configures indexing.
type Options struct {
	// Coverage, when set, masks every tree and line set down to executed
	// regions (the +coverage variants of Table I).
	Coverage *coverage.Profile
	// KeepSystemHeaders includes true system headers in the unit instead
	// of masking them out during analysis.
	KeepSystemHeaders bool
	// Workers bounds the worker pool that indexes units concurrently.
	// 0 (the default) selects runtime.NumCPU(); 1 forces the serial path.
	// The result is identical for every value: units are written into
	// their input slots and sorted afterwards, so scheduling never leaks
	// into the output.
	Workers int
	// Recorder, when set, records per-unit pipeline spans (preprocess,
	// lex, parse, sem, inline, IR lowering) and counters. nil disables
	// observability at no hot-path cost.
	Recorder *obs.Recorder
}

// ResolvedWorkers returns the worker count indexing will actually use:
// Workers clamped per ResolveWorkers (<= 0 or above NumCPU resolve to
// NumCPU).
func (o Options) ResolvedWorkers() int { return ResolveWorkers(o.Workers) }

// IndexCodebase runs the full extraction pipeline over a generated
// codebase. Units are independent of each other (each builds its own
// preprocessor, parser, and trees over the shared read-only file maps), so
// they are indexed concurrently on the Options.Workers pool.
func IndexCodebase(cb *corpus.Codebase, opts Options) (*Index, error) {
	return IndexCodebaseCtx(context.Background(), cb, opts)
}

// IndexCodebaseCtx is IndexCodebase under a cancellation context: the
// per-unit worker pool checks ctx at every task grant, and a canceled
// run returns ctx.Err() with no partial Index — callers never see (and
// never persist) a half-indexed codebase.
func IndexCodebaseCtx(ctx context.Context, cb *corpus.Codebase, opts Options) (*Index, error) {
	idx := &Index{Codebase: cb.App, Model: string(cb.Model), Lang: cb.Lang, Opts: opts.Digest()}
	workers := opts.ResolvedWorkers()
	root := opts.Recorder.Start("index.codebase").
		Arg("app", cb.App).Arg("model", string(cb.Model))
	opts.Recorder.Counter("index.units").Add(int64(len(cb.Units)))
	units := make([]UnitIndex, len(cb.Units))
	errs := make([]error, len(cb.Units))
	ctxErr := runParallelCtx(ctx, len(cb.Units), workers, func(i int) {
		u := cb.Units[i]
		usp := root.Start("index.unit").Arg("file", u.File)
		if cb.Lang == corpus.LangFortran {
			units[i], errs[i] = indexFortranUnit(cb, u, opts, usp)
		} else {
			units[i], errs[i] = indexCXXUnit(cb, u, opts, usp)
		}
		usp.End()
	})
	root.End()
	if ctxErr != nil {
		return nil, ctxErr
	}
	// report the first failure in input order, matching the serial loop
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: %s/%s %s: %w", cb.App, cb.Model, cb.Units[i].File, err)
		}
	}
	idx.Units = units
	sortUnits(idx.Units)
	return idx, nil
}

// sortUnits establishes the canonical unit order: by Role, tie-broken by
// File. Fresh and store-restored indexes must agree on this order — the
// incremental layer's MetricHash folds units in slice order, so a
// reordered-but-equal index would spuriously miss the cell memo.
func sortUnits(units []UnitIndex) {
	sort.Slice(units, func(i, j int) bool {
		if units[i].Role != units[j].Role {
			return units[i].Role < units[j].Role
		}
		return units[i].File < units[j].File
	})
}

func indexCXXUnit(cb *corpus.Codebase, u corpus.Unit, opts Options, usp *obs.Span) (UnitIndex, error) {
	ui := UnitIndex{File: u.File, Role: u.Role, Trees: map[string]*tree.Node{}}
	provider := &minic.MapProvider{Files: cb.Files, System: cb.System}
	pp := minic.NewPreprocessor(provider, nil)
	res, err := pp.PreprocessObs(u.File, usp)
	if err != nil {
		return ui, err
	}
	ui.Deps = append([]string{u.File}, res.Includes...)
	ui.MissingDeps = res.MissingIncludes
	isSystem := func(file string) bool {
		if opts.KeepSystemHeaders {
			return false
		}
		return cb.System[file]
	}

	// unit file set: the root plus its dependency closure (Eq. 1)
	unitFiles := []string{u.File}
	for _, inc := range res.Includes {
		if !isSystem(inc) {
			unitFiles = append(unitFiles, inc)
		}
	}

	// --- perceived metrics: SLOC / LLOC / Source ---------------------------
	for _, f := range unitFiles {
		src := cb.Files[f]
		ui.SLOC += sloc.SLOC(src, sloc.LangC)
		ui.LLOC += sloc.LLOC(src, sloc.LangC)
		lines, nums := sloc.NormalizeWithLines(src, sloc.LangC)
		ui.SourceLines = append(ui.SourceLines, lines...)
		for _, n := range nums {
			ui.LineFiles = append(ui.LineFiles, f)
			ui.LineNums = append(ui.LineNums, n)
		}
	}
	// the +pp variant measures what the compiler actually consumed —
	// including everything the preprocessor pulled in (this is where the
	// SYCL two-pass blow-up appears)
	ppLines := strings.Split(res.Text, "\n")
	for i, l := range ppLines {
		if i < len(res.LineOrigin) && isSystem(res.LineOrigin[i].File) {
			continue
		}
		for _, n := range sloc.Normalize(l, sloc.LangC) {
			ui.SourceLinesPP = append(ui.SourceLinesPP, n)
		}
	}

	// --- T_src --------------------------------------------------------------
	ssp := usp.Start("frontend.srctree")
	tsrc := tree.New("unit")
	for _, f := range unitFiles {
		tsrc.Add(minic.BuildSrcTree(cb.Files[f], f))
	}
	ui.Trees[MetricTsrc] = tsrc
	tsrcPP := minic.BuildSrcTree(res.Text, u.File)
	minic.ApplyLineOriginsTree(tsrcPP, res.LineOrigin)
	tsrcPP = tsrcPP.Filter(func(n *tree.Node) bool { return !isSystem(n.Pos.File) })
	ui.Trees[MetricTsrcPP] = tsrcPP
	ssp.End()

	// --- T_sem / T_sem+i ----------------------------------------------------
	unit, err := minic.ParseUnitObs(res.Text, u.File, usp)
	if err != nil {
		return ui, err
	}
	minic.ApplyLineOrigins(unit, res.LineOrigin)
	pruned := pruneSystemDecls(unit, isSystem)
	semsp := usp.Start("frontend.sem")
	ui.Trees[MetricTsem] = minic.BuildSemTree(pruned)
	semsp.End()
	insp := usp.Start("frontend.inline")
	inlined := minic.InlineUnit(unit, minic.InlineOptions{ExcludeFile: func(f string) bool {
		return cb.System[f] // inlining never pulls true system code in
	}})
	ui.Trees[MetricTsemI] = minic.BuildSemTree(pruneSystemDecls(inlined, isSystem))
	insp.End()

	// --- T_ir ---------------------------------------------------------------
	bundle := ir.LowerUnitObs(pruned, u.File, usp)
	ui.Trees[MetricTir] = bundle.Tree()

	applyCoverage(&ui, opts.Coverage)
	finalizeUnit(cb, &ui)
	return ui, nil
}

func indexFortranUnit(cb *corpus.Codebase, u corpus.Unit, opts Options, usp *obs.Span) (UnitIndex, error) {
	ui := UnitIndex{File: u.File, Role: u.Role, Trees: map[string]*tree.Node{}}
	src := cb.Files[u.File]
	ui.SLOC = sloc.SLOC(src, sloc.LangFortran)
	ui.LLOC = sloc.LLOC(src, sloc.LangFortran)
	lines, nums := sloc.NormalizeWithLines(src, sloc.LangFortran)
	ui.SourceLines = lines
	ui.LineNums = nums
	for range nums {
		ui.LineFiles = append(ui.LineFiles, u.File)
	}
	// Fortran has no preprocessing phase in this dialect: +pp == plain
	ui.SourceLinesPP = ui.SourceLines

	ssp := usp.Start("frontend.srctree")
	ui.Trees[MetricTsrc] = minifortran.BuildSrcTree(src, u.File)
	ui.Trees[MetricTsrcPP] = ui.Trees[MetricTsrc]
	ssp.End()

	unit, err := minifortran.ParseUnitObs(src, u.File, usp)
	if err != nil {
		return ui, err
	}
	semsp := usp.Start("frontend.sem")
	ui.Trees[MetricTsem] = minic.BuildSemTree(unit)
	semsp.End()
	insp := usp.Start("frontend.inline")
	inlined := minic.InlineUnit(unit, minic.InlineOptions{})
	ui.Trees[MetricTsemI] = minic.BuildSemTree(inlined)
	insp.End()
	bundle := ir.LowerUnitObs(unit, u.File, usp)
	ui.Trees[MetricTir] = bundle.Tree()

	applyCoverage(&ui, opts.Coverage)
	// Fortran units in this dialect have no include mechanism: the unit
	// depends on its root file alone.
	ui.Deps = []string{u.File}
	finalizeUnit(cb, &ui)
	return ui, nil
}

func applyCoverage(ui *UnitIndex, prof *coverage.Profile) {
	if prof == nil {
		return
	}
	for _, k := range sortedTreeKeys(ui.Trees) {
		ui.Trees[k] = prof.MaskTree(ui.Trees[k])
	}
	// +coverage variants of the perceived metrics: keep only executed
	// lines, recount SLOC, and scale LLOC by the surviving fraction (the
	// logical-line mask a real coverage report would produce).
	var lines []string
	var files []string
	var nums []int
	for i, l := range ui.SourceLines {
		f, n := "", 0
		if i < len(ui.LineFiles) {
			f = ui.LineFiles[i]
		}
		if i < len(ui.LineNums) {
			n = ui.LineNums[i]
		}
		if prof.Keep(f, n, l) {
			lines = append(lines, l)
			files = append(files, f)
			nums = append(nums, n)
		}
	}
	if len(ui.SourceLines) > 0 {
		frac := float64(len(lines)) / float64(len(ui.SourceLines))
		ui.LLOC = int(float64(ui.LLOC)*frac + 0.5)
	}
	ui.SourceLines = lines
	ui.LineFiles = files
	ui.LineNums = nums
	ui.SLOC = len(lines)
}

// pruneSystemDecls removes top-level declarations whose position lies in a
// system file ("artefacts such as system headers ... can simply be masked
// out during the analysis phase").
func pruneSystemDecls(unit *minic.ASTNode, isSystem func(string) bool) *minic.ASTNode {
	out := unit.Clone()
	var kept []*minic.ASTNode
	for _, d := range out.Children {
		if d.Pos.IsValid() && isSystem(d.Pos.File) {
			continue
		}
		kept = append(kept, d)
	}
	out.Children = kept
	return out
}

// combinedUnit preprocesses and parses a whole C++ codebase as one
// translation unit (every unit file included into a synthetic
// __combined.cpp, main last), the executable form both the coverage and
// profiling runs interpret.
func combinedUnit(cb *corpus.Codebase) (*minic.ASTNode, error) {
	if cb.Lang == corpus.LangFortran {
		return nil, fmt.Errorf("core: coverage runs require the C++ interpreter")
	}
	files := make(map[string]string, len(cb.Files)+1)
	for k, v := range cb.Files {
		files[k] = v
	}
	var includes []string
	for _, u := range cb.Units {
		includes = append(includes, fmt.Sprintf("#include %q", u.File))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(includes))) // main last
	files["__combined.cpp"] = strings.Join(includes, "\n") + "\n"
	provider := &minic.MapProvider{Files: files, System: cb.System}
	pp := minic.NewPreprocessor(provider, nil)
	res, err := pp.Preprocess("__combined.cpp")
	if err != nil {
		return nil, err
	}
	unit, err := minic.ParseUnit(res.Text, "__combined.cpp")
	if err != nil {
		return nil, err
	}
	minic.ApplyLineOrigins(unit, res.LineOrigin)
	return unit, nil
}

// RunCoverage executes the serial port of an app in the interpreter on the
// reduced problem size and returns its coverage profile, implementing the
// "recompile with coverage flags and run with a reduced problem set" leg of
// the workflow.
func RunCoverage(cb *corpus.Codebase) (*coverage.Profile, error) {
	unit, err := combinedUnit(cb)
	if err != nil {
		return nil, err
	}
	out, err := interp.Run(unit, interp.Options{})
	if err != nil {
		return nil, err
	}
	return coverage.NewProfile(out.Coverage), nil
}
