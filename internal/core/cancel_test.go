package core

// Cancellation regression tests (PR 10, satellite 1). The worker pool
// must stop granting tasks once the request context is canceled, and a
// canceled sweep must publish nothing to the matrix-cell memo — the memo
// only ever holds cells from sweeps that ran to completion, so a later
// identical request is exact.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"silvervale/internal/corpus"
	"silvervale/internal/ted"
)

// TestRunParallelCtxBoundedGrants pins the grant-boundary contract
// deterministically: with every worker blocked inside a granted task,
// cancel the context, then release the tasks. Each worker finishes its
// in-flight task (granted tasks run to completion) and then must observe
// the cancellation before pulling another index — so exactly `workers`
// tasks execute out of a much larger range, and the pool returns
// ctx.Err(). cancel() happens strictly before close(block), and the
// blocked workers cannot resume until the close, so the ordering is not
// timing-dependent.
func TestRunParallelCtxBoundedGrants(t *testing.T) {
	const workers, n = 4, 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	block := make(chan struct{})
	var started, executed atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- runParallelCtx(ctx, n, workers, func(i int) {
			started.Add(1)
			<-block
			executed.Add(1)
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for started.Load() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers started a task", started.Load(), workers)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(block)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("runParallelCtx returned %v, want context.Canceled", err)
	}
	if got := executed.Load(); got != workers {
		t.Fatalf("%d tasks executed after cancel, want exactly %d (one in-flight per worker, zero further grants)", got, workers)
	}
	if got := started.Load(); got != workers {
		t.Fatalf("%d tasks granted, want exactly %d", got, workers)
	}
}

// TestRunParallelCtxSerialCancel pins the same contract on the serial
// degenerate path (workers <= 1): cancellation from inside task i stops
// the loop before granting i+1.
func TestRunParallelCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran []int
	err := runParallelCtx(ctx, 10, 1, func(i int) {
		ran = append(ran, i)
		if i == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("serial runParallelCtx returned %v, want context.Canceled", err)
	}
	if len(ran) != 3 {
		t.Fatalf("serial path ran %v after cancel at i=2, want exactly [0 1 2]", ran)
	}
}

// TestRunParallelCtxUncanceled pins that a nil-cancel context costs
// nothing: the full range runs and the error is nil on both paths.
func TestRunParallelCtxUncanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var count atomic.Int64
		if err := runParallelCtx(context.Background(), 32, workers, func(i int) { count.Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count.Load() != 32 {
			t.Fatalf("workers=%d: ran %d/32 tasks", workers, count.Load())
		}
	}
}

func memoLen(e *Engine) int {
	e.cellMu.Lock()
	defer e.cellMu.Unlock()
	return len(e.cellMemo)
}

// TestCanceledMatrixPublishesNothing is the satellite-1 regression: a
// canceled matrix sweep returns ctx.Err(), leaves the matrix-cell memo
// empty, and the next uncancelled sweep on the same engine is
// byte-identical to a fresh serial computation.
func TestCanceledMatrixPublishesNothing(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	e := NewEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.MatrixCtx(ctx, idxs, order, MetricTsem); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled MatrixCtx returned %v, want context.Canceled", err)
	}
	if n := memoLen(e); n != 0 {
		t.Fatalf("canceled sweep published %d cells to the memo, want 0", n)
	}
	want, err := Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if matrixBytes(got) != matrixBytes(want) {
		t.Fatalf("post-cancel sweep differs from serial\nserial: %v\ngot:    %v", want, got)
	}
	if n := memoLen(e); n == 0 {
		t.Fatal("completed sweep published nothing — memo wiring broken")
	}
}

// TestCanceledTieredMatrixPublishesNothing extends the regression to the
// tiered route/refine/reduce schedule: cancellation before Phase C means
// no cells (and no tier provenance) reach the memo.
func TestCanceledTieredMatrixPublishesNothing(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	e := NewEngine(1)
	policy := ted.NewTierPolicy(0.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.MatrixTieredCtx(ctx, idxs, order, MetricTsem, policy); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled MatrixTieredCtx returned %v, want context.Canceled", err)
	}
	if n := memoLen(e); n != 0 {
		t.Fatalf("canceled tiered sweep published %d cells, want 0", n)
	}
	want, err := NewEngine(1).MatrixTiered(idxs, order, MetricTsem, policy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MatrixTiered(idxs, order, MetricTsem, policy)
	if err != nil {
		t.Fatal(err)
	}
	if matrixBytes(got.Values) != matrixBytes(want.Values) {
		t.Fatalf("post-cancel tiered sweep differs from fresh engine")
	}
}

// TestCanceledFromBase pins FromBaseCtx's discard-partials rule.
func TestCanceledFromBase(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	e := NewEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := e.FromBaseCtx(ctx, idxs, "f-sequential", order, MetricTsem); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("canceled FromBaseCtx returned (%v, %v), want (nil, context.Canceled)", out, err)
	}
	want, err := FromBase(idxs, "f-sequential", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.FromBase(idxs, "f-sequential", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("post-cancel FromBase differs at %s: %v vs %v", k, got[k], v)
		}
	}
}

// TestCanceledIndexReturnsNothing pins the index pipeline: a canceled
// IndexCodebaseCtx yields (nil, ctx.Err()), never a partial Index.
func TestCanceledIndexReturnsNothing(t *testing.T) {
	app, err := corpus.AppByName("babelstream-fortran")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.ModelsFor(app)[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	idx, err := IndexCodebaseCtx(ctx, cb, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) || idx != nil {
		t.Fatalf("canceled IndexCodebaseCtx returned (%v, %v), want (nil, context.Canceled)", idx, err)
	}
	idx2, err := NewEngine(1).IndexCodebaseCtx(ctx, cb, Options{})
	if !errors.Is(err, context.Canceled) || idx2 != nil {
		t.Fatalf("canceled engine IndexCodebaseCtx returned (%v, %v), want (nil, context.Canceled)", idx2, err)
	}
}
