package core

// Engine tests: the concurrent divergence engine must be a pure
// optimisation — byte-identical output to the serial one-shot path for
// every worker count, from any number of goroutines, against a shared
// cache. Run with -race to exercise the synchronisation (documented
// tier-1 step in README/ROADMAP).

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/ted"
)

// testEngine is the package's shared cached engine. The seed shape and
// probe tests route their FromBase/Matrix/Diverge calls through it, so
// every distinct (tree, tree, costs) pair is computed once per test run —
// the equality tests below pin it byte-identical to the serial path, and
// the shared memo keeps the package inside the race detector's default
// 10-minute budget on slow runners.
var testEngine = NewEngine(0)

// buildIndexes indexes every model of an app serially (Workers: 1), the
// reference configuration the parallel paths are compared against.
// Results are memoised per app: the engine tests treat indexes as
// read-only inputs, so one build serves every test.
var builtIndexes sync.Map // app -> *builtApp

type builtApp struct {
	once  sync.Once
	idxs  map[string]*Index
	order []string
	err   error
}

func buildIndexes(tb testing.TB, appName string) (map[string]*Index, []string) {
	tb.Helper()
	entry, _ := builtIndexes.LoadOrStore(appName, &builtApp{})
	ba := entry.(*builtApp)
	ba.once.Do(func() {
		app, err := corpus.AppByName(appName)
		if err != nil {
			ba.err = err
			return
		}
		ba.idxs = map[string]*Index{}
		for _, m := range corpus.ModelsFor(app) {
			cb, err := corpus.Generate(app, m)
			if err != nil {
				ba.err = err
				return
			}
			idx, err := IndexCodebase(cb, Options{Workers: 1})
			if err != nil {
				ba.err = err
				return
			}
			ba.idxs[string(m)] = idx
			ba.order = append(ba.order, string(m))
		}
	})
	if ba.err != nil {
		tb.Fatal(ba.err)
	}
	return ba.idxs, ba.order
}

// matrixBytes renders a matrix to an exact byte representation ('%v' over
// float64 round-trips every bit), the form the determinism guarantees are
// stated in.
func matrixBytes(m [][]float64) string { return fmt.Sprintf("%v", m) }

func TestParallelIndexMatchesSerial(t *testing.T) {
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []corpus.Model{corpus.Serial, corpus.SYCLACC} {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := IndexCodebase(cb, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := IndexCodebase(cb, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s/%s: parallel index differs from serial", app.Name, m)
		}
	}
}

func TestEngineMatrixMatchesSerial(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	metrics := []string{MetricTsem, MetricTsrc, MetricSource, MetricSLOC}
	if testing.Short() {
		metrics = metrics[:1]
	}
	for _, metric := range metrics {
		want, err := Matrix(idxs, order, metric)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := NewEngine(workers).Matrix(idxs, order, metric)
			if err != nil {
				t.Fatal(err)
			}
			if matrixBytes(got) != matrixBytes(want) {
				t.Fatalf("%s with %d workers: matrix differs from serial\nserial:   %v\nparallel: %v",
					metric, workers, want, got)
			}
		}
	}
}

func TestEngineFromBaseMatchesSerial(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	want, err := FromBase(idxs, "f-sequential", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEngine(8).FromBase(idxs, "f-sequential", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel FromBase differs: %v vs %v", got, want)
	}
}

// TestSharedCacheConcurrentMatrix runs Matrix from many goroutines against
// one shared engine/cache and requires every result to be byte-identical
// to the serial path — the contended-memo scenario the cache must survive.
func TestSharedCacheConcurrentMatrix(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	want, err := Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := matrixBytes(want)
	engine := NewEngine(4)
	const goroutines = 6
	results := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			m, err := engine.Matrix(idxs, order, MetricTsem)
			if err != nil {
				errs[g] = err
				return
			}
			results[g] = matrixBytes(m)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if results[g] != wantBytes {
			t.Fatalf("goroutine %d produced a different matrix than the serial path", g)
		}
	}
	if st := engine.CacheStats(); st.Hits == 0 {
		t.Fatalf("six identical sweeps over one cache produced no hits: %+v", st)
	} else if st.HitRate() <= 0 {
		t.Fatalf("cache stats report hits but a non-positive hit rate: %s", st)
	}
}

// TestEngineCacheReuse verifies the short-circuit economics the engine is
// for: a repeated Matrix over the same indexes answers every cell from the
// cell memo, without even consulting the TED cache (DESIGN.md §12).
func TestEngineCacheReuse(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	engine := NewEngine(2)
	if _, err := engine.Matrix(idxs, order, MetricTsem); err != nil {
		t.Fatal(err)
	}
	cold := engine.CacheStats()
	if _, err := engine.Matrix(idxs, order, MetricTsem); err != nil {
		t.Fatal(err)
	}
	warm := engine.CacheStats()
	// CacheStats carries the (map-valued) store snapshot, so compare the
	// traffic counters rather than the whole struct.
	if warm.Hits != cold.Hits || warm.Misses != cold.Misses ||
		warm.SubtreeHits != cold.SubtreeHits || warm.SubtreeMisses != cold.SubtreeMisses ||
		warm.FlatHits != cold.FlatHits || warm.FlatMisses != cold.FlatMisses {
		t.Fatalf("second sweep reached the TED layer: cold %+v warm %+v", cold, warm)
	}
	n := len(order)
	if got, want := engine.IncrStats().CellsReused, n*(n-1)/2; got != want {
		t.Fatalf("cell memo reused %d cells, want %d", got, want)
	}
}

// TestEngineErrorsMatchSerial pins the engine's error reporting to the
// serial loop: same missing-model and unknown-metric messages, detected
// deterministically regardless of scheduling.
func TestEngineErrorsMatchSerial(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	engine := NewEngine(4)

	_, serialErr := Matrix(idxs, append([]string{"nope"}, order...), MetricTsem)
	_, engineErr := engine.Matrix(idxs, append([]string{"nope"}, order...), MetricTsem)
	if serialErr == nil || engineErr == nil || serialErr.Error() != engineErr.Error() {
		t.Fatalf("missing-model errors differ: %v vs %v", serialErr, engineErr)
	}

	_, serialErr = Matrix(idxs, order, "bogus")
	_, engineErr = engine.Matrix(idxs, order, "bogus")
	if serialErr == nil || engineErr == nil || serialErr.Error() != engineErr.Error() {
		t.Fatalf("unknown-metric errors differ: %v vs %v", serialErr, engineErr)
	}

	_, serialErr = FromBase(idxs, "nope", order, MetricTsem)
	_, engineErr = engine.FromBase(idxs, "nope", order, MetricTsem)
	if serialErr == nil || engineErr == nil || serialErr.Error() != engineErr.Error() {
		t.Fatalf("missing-base errors differ: %v vs %v", serialErr, engineErr)
	}
}

// TestEngineDivergeVariantsMatchSerial covers the cached cost-model and
// approximate paths against their one-shot forms.
func TestEngineDivergeVariantsMatchSerial(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	engine := NewEngine(2)
	base := idxs[order[0]]
	costs := []ted.Costs{
		{Insert: 1, Delete: 1, Rename: 1},
		{Insert: 2, Delete: 1, Rename: 1},
		{Insert: 1, Delete: 2, Rename: 3},
	}
	for _, m := range order {
		for _, tc := range costs {
			want, err := DivergeWithCosts(base, idxs[m], MetricTsem, tc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := engine.DivergeWithCosts(base, idxs[m], MetricTsem, tc)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("weighted divergence differs for %s under %+v: %+v vs %+v", m, tc, want, got)
			}
		}
		want, err := ApproxDiverge(base, idxs[m], MetricTsem)
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.ApproxDiverge(base, idxs[m], MetricTsem)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("approx divergence differs for %s: %+v vs %+v", m, want, got)
		}
	}
}

// TestMatrixRunsReproducible is the regression test for map-iteration
// nondeterminism: repeated runs (serial and parallel, fresh and shared
// caches) must render byte-identically, and TreeSizes must agree with
// itself across calls.
func TestMatrixRunsReproducible(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	var renders []string
	for run := 0; run < 3; run++ {
		m, err := NewEngine(4).Matrix(idxs, order, MetricTsem)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, matrixBytes(m))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("run %d rendered differently than run 0", i)
		}
	}
	for _, m := range order {
		a, b := TreeSizes(idxs[m]), TreeSizes(idxs[m])
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("TreeSizes not reproducible for %s: %v vs %v", m, a, b)
		}
	}
}
