// Package srcloc provides source locations, spans, and per-file line masks.
//
// Every node in a semantic-bearing tree keeps a back-reference to its source
// location (file and line). Back-references enable dependency
// reconstruction, coverage masking, and pruning of tree regions by source
// range, as described in Section III.A of the paper.
package srcloc

import (
	"fmt"
	"sort"
)

// Pos is a position in a source file. Line and Col are 1-based; a zero Pos
// means "unknown".
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:col.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.Col > 0 {
		return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d", p.File, p.Line)
}

// Before reports whether p is strictly before q, assuming the same file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Span is a half-open source range [Start, End) within a single file.
type Span struct {
	Start Pos
	End   Pos
}

// SpanOf builds a span covering both positions.
func SpanOf(a, b Pos) Span {
	if b.Before(a) {
		a, b = b, a
	}
	return Span{Start: a, End: b}
}

// Contains reports whether the span contains the given line of its file.
func (s Span) Contains(file string, line int) bool {
	if s.Start.File != file {
		return false
	}
	return line >= s.Start.Line && line <= s.End.Line
}

// String renders the span.
func (s Span) String() string {
	return fmt.Sprintf("%s:%d-%d", s.Start.File, s.Start.Line, s.End.Line)
}

// LineMask records, per file, which lines are "live". It is the internal
// representation of coverage data: the indexing step converts profiles into
// a line-based mask that can be toggled for any tree or source file.
type LineMask struct {
	files map[string]map[int]bool
}

// NewLineMask returns an empty mask.
func NewLineMask() *LineMask {
	return &LineMask{files: make(map[string]map[int]bool)}
}

// Set marks a line of a file as live (true) or dead (false).
func (m *LineMask) Set(file string, line int, live bool) {
	f, ok := m.files[file]
	if !ok {
		f = make(map[int]bool)
		m.files[file] = f
	}
	f[line] = live
}

// MarkRange marks all lines in [from, to] of a file as live.
func (m *LineMask) MarkRange(file string, from, to int, live bool) {
	for l := from; l <= to; l++ {
		m.Set(file, l, live)
	}
}

// Live reports whether the line is live. Lines never mentioned in the mask
// are reported via the Default policy of the caller; Live returns (value,
// known).
func (m *LineMask) Live(file string, line int) (bool, bool) {
	f, ok := m.files[file]
	if !ok {
		return false, false
	}
	v, ok := f[line]
	return v, ok
}

// Files lists files mentioned by the mask, sorted.
func (m *LineMask) Files() []string {
	out := make([]string, 0, len(m.files))
	for f := range m.files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Lines returns the sorted live lines for a file.
func (m *LineMask) Lines(file string) []int {
	f := m.files[file]
	out := make([]int, 0, len(f))
	for l, v := range f {
		if v {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}

// ForEach visits every (file, line, live) entry of the mask — including
// explicitly-dead lines — in sorted (file, line) order. The deterministic
// order is what lets callers derive content digests from a mask (two masks
// with the same entries always visit identically, regardless of insertion
// order).
func (m *LineMask) ForEach(fn func(file string, line int, live bool)) {
	for _, file := range m.Files() {
		f := m.files[file]
		lines := make([]int, 0, len(f))
		for l := range f {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			fn(file, l, f[l])
		}
	}
}

// CountLive returns the number of live lines across all files.
func (m *LineMask) CountLive() int {
	n := 0
	for _, f := range m.files {
		for _, v := range f {
			if v {
				n++
			}
		}
	}
	return n
}

// Merge ORs another mask into m: a line is live if live in either.
func (m *LineMask) Merge(other *LineMask) {
	if other == nil {
		return
	}
	for file, lines := range other.files {
		for l, v := range lines {
			if v {
				m.Set(file, l, true)
			} else if cur, known := m.Live(file, l); !known || !cur {
				m.Set(file, l, v)
			}
		}
	}
}
