package srcloc

import "testing"

func TestPosBasics(t *testing.T) {
	p := Pos{File: "a.c", Line: 3, Col: 7}
	if !p.IsValid() {
		t.Fatal("valid pos reported invalid")
	}
	if p.String() != "a.c:3:7" {
		t.Fatalf("String = %q", p.String())
	}
	var zero Pos
	if zero.IsValid() || zero.String() != "-" {
		t.Fatal("zero pos should be invalid")
	}
	noCol := Pos{File: "a.c", Line: 3}
	if noCol.String() != "a.c:3" {
		t.Fatalf("String = %q", noCol.String())
	}
}

func TestPosBefore(t *testing.T) {
	a := Pos{Line: 1, Col: 5}
	b := Pos{Line: 2, Col: 1}
	c := Pos{Line: 1, Col: 9}
	if !a.Before(b) || !a.Before(c) || b.Before(a) {
		t.Fatal("Before ordering wrong")
	}
}

func TestSpan(t *testing.T) {
	a := Pos{File: "x.c", Line: 4}
	b := Pos{File: "x.c", Line: 2}
	s := SpanOf(a, b) // must normalise ordering
	if s.Start.Line != 2 || s.End.Line != 4 {
		t.Fatalf("span = %v", s)
	}
	if !s.Contains("x.c", 3) || s.Contains("x.c", 5) || s.Contains("y.c", 3) {
		t.Fatal("Contains wrong")
	}
	if s.String() != "x.c:2-4" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestLineMask(t *testing.T) {
	m := NewLineMask()
	m.MarkRange("a.c", 1, 3, true)
	m.Set("a.c", 2, false)
	m.Set("b.c", 10, true)

	if live, known := m.Live("a.c", 1); !known || !live {
		t.Fatal("a.c:1 should be live")
	}
	if live, known := m.Live("a.c", 2); !known || live {
		t.Fatal("a.c:2 should be dead")
	}
	if _, known := m.Live("a.c", 99); known {
		t.Fatal("a.c:99 should be unknown")
	}
	if got := m.CountLive(); got != 3 {
		t.Fatalf("CountLive = %d, want 3", got)
	}
	files := m.Files()
	if len(files) != 2 || files[0] != "a.c" || files[1] != "b.c" {
		t.Fatalf("Files = %v", files)
	}
	lines := m.Lines("a.c")
	if len(lines) != 2 || lines[0] != 1 || lines[1] != 3 {
		t.Fatalf("Lines = %v", lines)
	}
}

func TestLineMaskMerge(t *testing.T) {
	a := NewLineMask()
	a.Set("f.c", 1, true)
	a.Set("f.c", 2, false)
	b := NewLineMask()
	b.Set("f.c", 2, true)
	b.Set("f.c", 3, false)
	a.Merge(b)
	if live, _ := a.Live("f.c", 2); !live {
		t.Fatal("merge should OR live lines")
	}
	if live, known := a.Live("f.c", 3); !known || live {
		t.Fatal("merge should carry dead lines for unknown targets")
	}
	a.Merge(nil) // must not panic
}
