package faultfs

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a compact fault-schedule spec, the format the CLI's
// SILVERVALE_FAULTFS environment knob uses (testing/CI only — see the
// verify skill's faultfs smoke run). The spec is a comma-separated list
// of entries:
//
//	[op:]class[@N[+]]
//
// where class is enospc | eio | crash | torn, op optionally restricts
// the fault to one operation kind (mkdirall, readfile, createtemp,
// write, sync, close, rename, remove, removeall), N is the 1-based index
// among matching operations (absent: every matching operation), and a
// trailing + makes the fault sticky from the Nth operation onward.
//
//	enospc@5+        ENOSPC on every operation from the fifth onward
//	sync:eio@1       EIO on the first fsync only
//	crash@12         freeze the tree at the twelfth operation
func ParseSpec(spec string) ([]Fault, error) {
	var out []Fault
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var f Fault
		rest := entry
		if op, tail, ok := strings.Cut(rest, ":"); ok {
			parsed, err := parseOp(op)
			if err != nil {
				return nil, fmt.Errorf("faultfs: spec %q: %w", entry, err)
			}
			f.Op = parsed
			rest = tail
		}
		if class, tail, ok := strings.Cut(rest, "@"); ok {
			parsed, err := parseClass(class)
			if err != nil {
				return nil, fmt.Errorf("faultfs: spec %q: %w", entry, err)
			}
			f.Class = parsed
			if strings.HasSuffix(tail, "+") {
				f.Sticky = true
				tail = strings.TrimSuffix(tail, "+")
			}
			n, err := strconv.Atoi(tail)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultfs: spec %q: index %q is not a positive integer", entry, tail)
			}
			f.N = n
		} else {
			parsed, err := parseClass(rest)
			if err != nil {
				return nil, fmt.Errorf("faultfs: spec %q: %w", entry, err)
			}
			f.Class = parsed
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultfs: empty fault spec")
	}
	return out, nil
}

func parseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s && op != OpAny {
			return op, nil
		}
	}
	return OpAny, fmt.Errorf("unknown operation %q", s)
}

func parseClass(s string) (Class, error) {
	for c, name := range classNames {
		if name == s {
			return c, nil
		}
	}
	return ENOSPC, fmt.Errorf("unknown fault class %q", s)
}
