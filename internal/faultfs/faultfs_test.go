package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeThrough performs one full commit-shaped sequence (mkdir, create,
// write, sync, close, rename) through fsys and returns the first error.
func writeThrough(fsys FS, dir, name string, data []byte) error {
	sub := filepath.Join(dir, "d")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	f, err := fsys.CreateTemp(sub, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(f.Name(), filepath.Join(sub, name))
}

// TestOSPassthroughRoundTrip: the passthrough writes real files readable
// through the same interface.
func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := writeThrough(OS{}, dir, "rec", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := (OS{}).ReadFile(filepath.Join(dir, "d", "rec"))
	if err != nil || string(data) != "payload" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if err := (OS{}).Remove(filepath.Join(dir, "d", "rec")); err != nil {
		t.Fatal(err)
	}
	if err := (OS{}).RemoveAll(filepath.Join(dir, "d")); err != nil {
		t.Fatal(err)
	}
}

// TestCountingModeIsTransparent: an empty schedule passes everything
// through and counts the exact operation sequence (the kill-point space).
func TestCountingModeIsTransparent(t *testing.T) {
	dir := t.TempDir()
	fsys := New(OS{})
	if err := writeThrough(fsys, dir, "rec", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// mkdir + createtemp + write + sync + close + rename
	if got := fsys.Ops(); got != 6 {
		t.Fatalf("ops = %d, want 6", got)
	}
	if fsys.Injected() != 0 || fsys.Crashed() {
		t.Fatal("fault-free run injected or crashed")
	}
}

// TestNthOpFault: a fault pinned to one global index fires exactly there,
// with the scheduled class, and later operations proceed.
func TestNthOpFault(t *testing.T) {
	dir := t.TempDir()
	// Op #4 of writeThrough is the Sync.
	fsys := New(OS{}, Fault{N: 4, Class: ENOSPC})
	err := writeThrough(fsys, dir, "rec", []byte("x"))
	if !errors.Is(err, ErrENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if !IsInjected(err) {
		t.Fatal("injected fault not recognised by IsInjected")
	}
	if fsys.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", fsys.Injected())
	}
	// A second sequence runs clean: the fault was index-pinned.
	if err := writeThrough(fsys, dir, "rec2", []byte("y")); err != nil {
		t.Fatal(err)
	}
}

// TestOpClassFault: an Op-restricted fault indexes within its class.
func TestOpClassFault(t *testing.T) {
	dir := t.TempDir()
	fsys := New(OS{}, Fault{Op: OpSync, N: 2, Class: EIO})
	if err := writeThrough(fsys, dir, "a", []byte("x")); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	err := writeThrough(fsys, dir, "b", []byte("y"))
	if !errors.Is(err, ErrEIO) {
		t.Fatalf("second sync err = %v, want EIO", err)
	}
}

// TestStickyFault: N with Sticky fails everything from that index on.
func TestStickyFault(t *testing.T) {
	dir := t.TempDir()
	fsys := New(OS{}, Fault{N: 3, Sticky: true, Class: ENOSPC})
	if err := writeThrough(fsys, dir, "rec", []byte("x")); !errors.Is(err, ErrENOSPC) {
		t.Fatalf("err = %v", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "later"), 0o755); !errors.Is(err, ErrENOSPC) {
		t.Fatalf("sticky fault released: %v", err)
	}
	if fsys.Crashed() {
		t.Fatal("sticky error class must not freeze the tree")
	}
}

// TestShortWriteLeavesPrefix: a crash during Write lands exactly the
// scheduled prefix in the temp file, and the freeze keeps cleanup from
// removing it — the torn page a killed process leaves behind.
func TestShortWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := New(OS{}, Fault{Op: OpWrite, N: 1, Class: Crash, ShortWrite: 3})
	err := writeThrough(fsys, dir, "rec", []byte("abcdef"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want crash", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "d", "tmp-*"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("temp files after crash: %v, %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || string(data) != "abc" {
		t.Fatalf("partial temp = %q, %v", data, err)
	}
	// Frozen: every later operation fails, the tree state is preserved.
	if err := fsys.Remove(matches[0]); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove = %v", err)
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() false after crash")
	}
}

// TestTornRename: the destination appears with a truncated prefix of the
// source, the source is gone, and the tree freezes.
func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	fsys := New(OS{}, Fault{Op: OpRename, N: 1, Class: TornRename})
	err := writeThrough(fsys, dir, "rec", []byte("0123456789"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want crash", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "d", "rec"))
	if err != nil {
		t.Fatalf("torn destination missing: %v", err)
	}
	if string(data) != "01234" {
		t.Fatalf("torn destination = %q, want first half", data)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "d", "tmp-*")); len(tmps) != 0 {
		t.Fatalf("torn rename left the source: %v", tmps)
	}
	if !fsys.Crashed() {
		t.Fatal("torn rename must freeze the tree")
	}
}

// TestTornRenameOnNonRenameDegradesToCrash: the class is only meaningful
// at renames; elsewhere it behaves as a plain freeze.
func TestTornRenameOnNonRenameDegradesToCrash(t *testing.T) {
	fsys := New(OS{}, Fault{N: 1, Class: TornRename})
	err := fsys.MkdirAll(filepath.Join(t.TempDir(), "x"), 0o755)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	if !fsys.Crashed() {
		t.Fatal("not frozen")
	}
}

// TestParseSpec covers the CLI spec grammar.
func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want []Fault
	}{
		{"enospc", []Fault{{Class: ENOSPC}}},
		{"eio@12", []Fault{{Class: EIO, N: 12}}},
		{"enospc@5+", []Fault{{Class: ENOSPC, N: 5, Sticky: true}}},
		{"sync:eio@1", []Fault{{Op: OpSync, Class: EIO, N: 1}}},
		{"crash@30", []Fault{{Class: Crash, N: 30}}},
		{"torn@7", []Fault{{Class: TornRename, N: 7}}},
		{"enospc@5+, write:crash@2", []Fault{
			{Class: ENOSPC, N: 5, Sticky: true},
			{Op: OpWrite, Class: Crash, N: 2},
		}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("ParseSpec(%q)[%d] = %+v, want %+v", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
	for _, bad := range []string{"", "bogus", "enospc@zero", "enospc@0", "flop:eio@1", "eio@-3"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestIsInjectedRejectsRealErrors: real filesystem errors never count as
// scheduled faults (they must feed the breaker but not fault_injected).
func TestIsInjectedRejectsRealErrors(t *testing.T) {
	_, err := os.ReadFile(filepath.Join(t.TempDir(), "nope"))
	if err == nil || IsInjected(err) {
		t.Fatalf("real error misclassified: %v", err)
	}
	if IsInjected(nil) {
		t.Fatal("nil misclassified")
	}
}
