// Package faultfs abstracts the filesystem operations the artifact store
// performs (internal/store) behind an interface with two implementations:
// a passthrough over package os, and a deterministic fault injector that
// fails scheduled operations with realistic error classes (ENOSPC, EIO,
// torn renames, short writes) or freezes the tree at a "crash here"
// sentinel so tests can reopen the exact directory state a killed process
// would leave behind. The injector is what turns the store's crash and
// corruption invariants ("never wrong answers, temp-file+rename commits,
// corrupt loads counted and skipped") from hand-waved properties into a
// systematically swept test surface — see internal/faultfs/replay for the
// kill-point enumeration harness and DESIGN.md §9 for the failure model.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// FS is the set of filesystem operations the artifact store uses. All
// paths are ordinary OS paths; implementations must be safe for
// concurrent use (the store's flusher runs on its own goroutine).
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(path string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
}

// File is the writable handle CreateTemp returns — the subset of *os.File
// the store's temp-file+sync+rename commit path touches.
type File interface {
	Name() string
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// ErrInjected is the sentinel every injected fault wraps. Callers use
// IsInjected (or errors.Is against this) to distinguish scheduled test
// faults from real filesystem failures, e.g. to feed a dedicated
// fault-injection counter.
var ErrInjected = errors.New("faultfs: injected fault")

// Injected error classes. Each wraps ErrInjected so one errors.Is check
// catches them all; ErrCrashed additionally marks operations refused
// because the tree is frozen at a crash sentinel.
var (
	ErrENOSPC  = fmt.Errorf("%w: no space left on device", ErrInjected)
	ErrEIO     = fmt.Errorf("%w: input/output error", ErrInjected)
	ErrCrashed = fmt.Errorf("%w: crashed (tree frozen)", ErrInjected)
)

// IsInjected reports whether err originates from a scheduled fault (any
// class, including the crash freeze) rather than the real filesystem.
func IsInjected(err error) bool {
	return errors.Is(err, ErrInjected)
}

// OS is the passthrough implementation over package os — the production
// filesystem. The zero value is ready to use.
type OS struct{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                     { return os.Remove(path) }
func (OS) RemoveAll(path string) error                  { return os.RemoveAll(path) }

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
