package replay

import (
	"os"
	"path/filepath"
	"testing"

	"silvervale/internal/faultfs"
)

// twoFiles commits two records the way the store does: temp-file, write,
// sync, close, rename, each under a shard directory.
func twoFiles(fsys *faultfs.FaultFS, dir string) error {
	for _, name := range []string{"alpha", "beta"} {
		sub := filepath.Join(dir, name[:1])
		if err := fsys.MkdirAll(sub, 0o755); err != nil {
			return err
		}
		f, err := fsys.CreateTemp(sub, "tmp-*")
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("content of " + name)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := fsys.Rename(f.Name(), filepath.Join(sub, name)); err != nil {
			return err
		}
	}
	return nil
}

// TestCount pins the kill-point space of the workload.
func TestCount(t *testing.T) {
	n, err := Count(twoFiles)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 { // 2 × (mkdir, createtemp, write, sync, close, rename)
		t.Fatalf("Count = %d, want 12", n)
	}
}

// TestSweepVisitsEveryKillPoint: the harness replays every index × class
// and every surviving final-name file is either complete or absent —
// never partial — for non-torn classes (rename is atomic; only the
// explicit torn class may leave a prefix).
func TestSweepVisitsEveryKillPoint(t *testing.T) {
	templates := []faultfs.Fault{
		{Class: faultfs.ENOSPC},
		{Class: faultfs.Crash},
		{Class: faultfs.TornRename},
	}
	visited := map[string]bool{}
	Sweep(t, templates, twoFiles, func(t *testing.T, dir string, p Point) {
		visited[p.Fault.Class.String()+string(rune('0'+p.Index))] = true
		for _, name := range []string{"a/alpha", "b/beta"} {
			data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(name)))
			if err != nil {
				continue // absent is a legal post-fault state
			}
			full := "content of " + filepath.Base(name)
			if string(data) == full {
				continue
			}
			if p.Fault.Class == faultfs.TornRename && len(data) < len(full) {
				continue // the torn class is allowed to leave a prefix
			}
			t.Fatalf("%s holds partial content %q under class %s", name, data, p.Fault.Class)
		}
	})
	if len(visited) != 3*12 {
		t.Fatalf("visited %d kill points, want 36", len(visited))
	}
}
