// Package replay is a reusable crash-consistency harness over faultfs: it
// enumerates every kill point in a filesystem workload (each operation
// index × each failure class), replays the workload into a fresh
// directory with that single fault injected, and hands the resulting
// tree — frozen mid-flight for crash classes — to an invariant check
// that reopens it the way a restarted process would. The artifact
// store's crash-replay suite (internal/store) drives its put→flush→Close
// sequence through this harness; any workload expressible as
// func(FS, dir) can be swept the same way.
package replay

import (
	"fmt"
	"os"
	"testing"

	"silvervale/internal/faultfs"
)

// Workload runs the filesystem sequence under test against fsys, rooted
// at dir. Errors surfaced by the workload itself are expected under
// injection (the store swallows commit faults by design), so the harness
// ignores its return — the invariants live in the Check.
type Workload func(fsys *faultfs.FaultFS, dir string) error

// Point identifies one replay: the fault that was injected, with
// Fault.N set to the operation index it fired at.
type Point struct {
	Index int
	Fault faultfs.Fault
}

// Check asserts the post-fault invariants over the (possibly frozen)
// tree at dir. It runs once per kill point; failures should be reported
// on t so each point surfaces as its own subtest failure.
type Check func(t *testing.T, dir string, p Point)

// Count runs the workload once over a fault-free passthrough in a
// scratch directory and returns how many filesystem operations it
// performs — the kill-point space Sweep enumerates.
func Count(work Workload) (int, error) {
	dir, err := os.MkdirTemp("", "replay-count-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	fsys := faultfs.New(faultfs.OS{})
	if err := work(fsys, dir); err != nil {
		return 0, fmt.Errorf("replay: fault-free workload failed: %w", err)
	}
	return fsys.Ops(), nil
}

// Sweep replays the workload once per (kill point × fault template):
// each template's N is pinned to every operation index in turn, the
// workload runs in a fresh directory with exactly that fault scheduled,
// and check then asserts the invariants on whatever the tree holds. A
// template's Op restriction is preserved — an Op-restricted template
// simply never fires at indexes whose operation does not match, which
// still exercises "fault absent" replays of the same schedule length.
func Sweep(t *testing.T, templates []faultfs.Fault, work Workload, check Check) {
	t.Helper()
	n, err := Count(work)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("replay: workload performs no filesystem operations")
	}
	for _, tpl := range templates {
		for k := 1; k <= n; k++ {
			fault := tpl
			fault.N = k
			name := fmt.Sprintf("%s@%d", fault.Class, k)
			if fault.Op != faultfs.OpAny {
				name = fmt.Sprintf("%s:%s", fault.Op, name)
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				fsys := faultfs.New(faultfs.OS{}, fault)
				_ = work(fsys, dir) // injected failures are the point
				check(t, dir, Point{Index: k, Fault: fault})
			})
		}
	}
}
