package faultfs

import (
	"io/fs"
	"path/filepath"
	"sync"
)

// Op identifies one filesystem operation class for fault matching.
type Op uint8

const (
	// OpAny matches every operation; a Fault with OpAny and N == 5 fires
	// on the fifth filesystem call of any kind.
	OpAny Op = iota
	OpMkdirAll
	OpReadFile
	OpCreateTemp
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpRemoveAll
)

var opNames = map[Op]string{
	OpAny: "any", OpMkdirAll: "mkdirall", OpReadFile: "readfile",
	OpCreateTemp: "createtemp", OpWrite: "write", OpSync: "sync",
	OpClose: "close", OpRename: "rename", OpRemove: "remove",
	OpRemoveAll: "removeall",
}

func (o Op) String() string { return opNames[o] }

// Class is the failure mode a matched Fault injects.
type Class uint8

const (
	// ENOSPC fails the operation with ErrENOSPC; the tree is untouched
	// (except a short write's prefix) and later operations proceed.
	ENOSPC Class = iota
	// EIO fails the operation with ErrEIO, same recoverable semantics.
	EIO
	// Crash is the "crash here" sentinel: the matched operation does not
	// happen (a Write with ShortWrite > 0 lands its prefix first), the
	// tree freezes in place, and every later operation fails with
	// ErrCrashed — the state a killed process would leave for reopen.
	Crash
	// TornRename models a rename that was made durable before the file
	// data (the classic rename-without-fsync crash): the destination
	// appears with only a prefix of the source's bytes, the source is
	// gone, and the tree freezes. On a non-rename operation it degrades
	// to a plain Crash.
	TornRename
)

var classNames = map[Class]string{
	ENOSPC: "enospc", EIO: "eio", Crash: "crash", TornRename: "torn",
}

func (c Class) String() string { return classNames[c] }

// Fault is one scheduled failure. The zero value (OpAny, N 0, ENOSPC)
// fails every operation with ENOSPC.
type Fault struct {
	// Op restricts matching to one operation class (OpAny: all).
	Op Op
	// N is the 1-based index among matching operations at which the fault
	// fires; 0 fires on every matching operation.
	N int
	// Sticky extends an N-indexed fault to every later matching
	// operation as well ("from the Nth call onward").
	Sticky bool
	// Class selects the failure mode.
	Class Class
	// ShortWrite, on a matched Write, is how many bytes reach the
	// underlying file before the fault fires (a torn page / partial
	// flush). Ignored for other operations.
	ShortWrite int
}

// FaultFS wraps a base FS with a deterministic fault schedule. With an
// empty schedule it is a transparent pass-through that merely counts
// operations — the counting mode the replay harness uses to enumerate
// kill points. Safe for concurrent use; operation indexes are assigned
// under one lock, so a serial caller sees a fully deterministic schedule.
type FaultFS struct {
	base FS

	mu       sync.Mutex
	schedule []Fault
	total    int
	perOp    map[Op]int
	crashed  bool
	injected int
}

// New returns a FaultFS over base with the given schedule.
func New(base FS, schedule ...Fault) *FaultFS {
	return &FaultFS{base: base, schedule: schedule, perOp: map[Op]int{}}
}

// Ops returns how many operations have been attempted (matched or not).
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Injected returns how many operations failed with an injected fault.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether a Crash/TornRename sentinel has frozen the tree.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step assigns the next operation index and resolves the schedule: it
// returns the matched fault (nil when the operation should pass through).
// The caller still holds no lock when performing the real operation, so
// base-FS latency never serialises unrelated callers.
func (f *FaultFS) step(op Op) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	f.perOp[op]++
	if f.crashed {
		f.injected++
		return &Fault{Op: op, Class: Crash}
	}
	for i := range f.schedule {
		flt := &f.schedule[i]
		if flt.Op != OpAny && flt.Op != op {
			continue
		}
		idx := f.total
		if flt.Op != OpAny {
			idx = f.perOp[op]
		}
		if flt.N != 0 && idx != flt.N && !(flt.Sticky && idx > flt.N) {
			continue
		}
		f.injected++
		if flt.Class == Crash || flt.Class == TornRename {
			f.crashed = true
		}
		return flt
	}
	return nil
}

// classErr maps a failure class onto its sentinel error.
func classErr(c Class) error {
	switch c {
	case ENOSPC:
		return ErrENOSPC
	case EIO:
		return ErrEIO
	default:
		return ErrCrashed
	}
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if flt := f.step(OpMkdirAll); flt != nil {
		return classErr(flt.Class)
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if flt := f.step(OpReadFile); flt != nil {
		return nil, classErr(flt.Class)
	}
	return f.base.ReadFile(path)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if flt := f.step(OpCreateTemp); flt != nil {
		return nil, classErr(flt.Class)
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, file: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	flt := f.step(OpRename)
	if flt == nil {
		return f.base.Rename(oldpath, newpath)
	}
	if flt.Class == TornRename {
		// The rename's directory entry survived the crash but the file
		// data did not: materialise the destination as a prefix of the
		// source, drop the source, and leave the tree frozen.
		if data, err := f.base.ReadFile(oldpath); err == nil {
			if tmp, err := f.base.CreateTemp(filepath.Dir(newpath), "torn-*"); err == nil {
				tmp.Write(data[:len(data)/2])
				tmp.Close()
				f.base.Rename(tmp.Name(), newpath)
			}
		}
		f.base.Remove(oldpath)
	}
	return classErr(flt.Class)
}

func (f *FaultFS) Remove(path string) error {
	if flt := f.step(OpRemove); flt != nil {
		return classErr(flt.Class)
	}
	return f.base.Remove(path)
}

func (f *FaultFS) RemoveAll(path string) error {
	if flt := f.step(OpRemoveAll); flt != nil {
		return classErr(flt.Class)
	}
	return f.base.RemoveAll(path)
}

// faultFile threads writes, syncs, and closes of a CreateTemp handle
// through the owning FaultFS's schedule.
type faultFile struct {
	fs   *FaultFS
	file File
}

func (f *faultFile) Name() string { return f.file.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	flt := f.fs.step(OpWrite)
	if flt == nil {
		return f.file.Write(p)
	}
	n := 0
	if flt.ShortWrite > 0 {
		k := flt.ShortWrite
		if k > len(p) {
			k = len(p)
		}
		n, _ = f.file.Write(p[:k])
	}
	return n, classErr(flt.Class)
}

func (f *faultFile) Sync() error {
	if flt := f.fs.step(OpSync); flt != nil {
		return classErr(flt.Class)
	}
	return f.file.Sync()
}

func (f *faultFile) Close() error {
	if flt := f.fs.step(OpClose); flt != nil {
		// Close the real handle regardless so tests do not leak file
		// descriptors; the injected error is what the caller sees.
		f.file.Close()
		return classErr(flt.Class)
	}
	return f.file.Close()
}
