package corpus

import (
	"fmt"
	"strings"

	"silvervale/internal/compdb"
)

// CompileCommands synthesizes the compile_commands.json entries a build of
// this codebase would record, closing the loop with the Compilation-DB
// ingestion front door (Fig. 2): generated codebases can be written to disk
// and re-ingested through the same path a CMake/Bear-produced project
// takes.
func (c *Codebase) CompileCommands(dir string) *compdb.DB {
	db := &compdb.DB{}
	for _, u := range c.Units {
		db.Entries = append(db.Entries, compdb.Entry{
			Directory: dir,
			Command:   c.compileCommand(u.File),
			File:      u.File,
			Output:    strings.TrimSuffix(u.File, extOf(u.File)) + ".o",
		})
	}
	return db
}

func extOf(f string) string {
	if i := strings.LastIndex(f, "."); i >= 0 {
		return f[i:]
	}
	return ""
}

func (c *Codebase) compileCommand(file string) string {
	if c.Lang == LangFortran {
		flags := ""
		switch c.Model {
		case FOpenMP, FOpenMPTaskloop:
			flags = " -fopenmp"
		case FOpenACC, FOpenACCArray:
			flags = " -fopenacc"
		}
		return fmt.Sprintf("gfortran -O3%s -c %s", flags, file)
	}
	compiler := "clang++"
	flags := "-std=c++17 -O3 -I."
	switch c.Model {
	case OpenMP:
		flags += " -fopenmp"
	case OpenMPTarget:
		flags += " -fopenmp -fopenmp-targets=nvptx64"
	case CUDA:
		flags += " -x cuda --cuda-gpu-arch=sm_90"
	case HIP:
		flags += " -x hip --offload-arch=gfx90a"
	case SYCLACC, SYCLUSM:
		flags += " -fsycl"
	case StdPar:
		compiler = "nvc++"
		flags = "-std=c++17 -O3 -I. -stdpar=gpu"
	case TBB:
		flags += " -ltbb"
	}
	return fmt.Sprintf("%s %s -c %s", compiler, flags, file)
}
