package corpus

// Model runtime headers. Each model's unit (Eq. 1: source file plus all
// dependencies) includes these, so their structure is where the paper's
// header-driven findings come from:
//
//   - sycl/sycl.hpp is heavily templated with "non-visible but
//     semantic-bearing elements such as default values of parameters or
//     even templates", plus macro machinery whose expansion reproduces the
//     Source+pp blow-up of the two-pass DPC++ compilation.
//   - Kokkos_Core.hpp and tbb/tbb.h carry function bodies, so T_sem+i
//     inlining pulls foreign code into library-model trees.
//   - cuda_runtime.h is declaration-only — first-party models rely on the
//     compiler, so nothing gets inlined and T_sem+i barely moves.
//   - hip/hip_runtime.h carries non-trivial runtime helpers with bodies,
//     so HIP sits between CUDA and the library models under T_sem+i.
//
// True system headers (cstdio, cmath, vector, and the C++ standard
// algorithm/execution/ranges headers) are flagged system and masked from
// the metrics by default.

func modelHeaders(model Model) map[string]string {
	out := map[string]string{}
	switch model {
	case OpenMP, OpenMPTarget:
		out["omp.h"] = headerOmp
	case CUDA:
		out["cuda_runtime.h"] = headerCudaRuntime
	case HIP:
		out["hip/hip_runtime.h"] = headerHipRuntime
	case Kokkos:
		out["Kokkos_Core.hpp"] = headerKokkos
	case SYCLACC, SYCLUSM:
		out["sycl/sycl.hpp"] = headerSYCL
		out["vector"] = headerVector
	case StdPar:
		out["algorithm"] = headerAlgorithm
		out["execution"] = headerExecution
		out["ranges"] = headerRanges
		out["vector"] = headerVector
	case TBB:
		out["tbb/tbb.h"] = headerTBB
	}
	return out
}

// IsStandardHeader reports whether a file name is a true system header
// (masked from the metrics by default); model runtime headers are part of
// the port and count toward divergence. Exposed so disk ingestion can
// classify files the same way the generator does.
func IsStandardHeader(name string) bool {
	switch name {
	case "cstdio", "cmath", "vector", "algorithm", "execution", "ranges", "omp.h":
		return true
	}
	return false
}

func modelHeaderIsSystem(name string) bool { return IsStandardHeader(name) }

const headerCstdio = `// <cstdio> (system)
int printf(const char *fmt);
int puts(const char *s);
`

const headerCmath = `// <cmath> (system)
double sqrt(double x);
double fabs(double x);
double fmin(double x, double y);
double fmax(double x, double y);
double exp(double x);
double log(double x);
double pow(double x, double y);
double floor(double x);
`

const headerOmp = `// <omp.h> (system): host runtime entry points
int omp_get_num_threads();
int omp_get_thread_num();
int omp_get_max_threads();
double omp_get_wtime();
void omp_set_num_threads(int n);
int omp_get_num_devices();
int omp_get_default_device();
`

const headerCudaRuntime = `// <cuda_runtime.h>: declaration-only first-party runtime surface
struct dim3 {
	int x;
	int y;
	int z;
	dim3(int xx) {
		x = xx;
		y = 1;
		z = 1;
	}
};

dim3 threadIdx = dim3(0);
dim3 blockIdx = dim3(0);
dim3 blockDim = dim3(1);
dim3 gridDim = dim3(1);

int cudaMalloc(double **ptr, int bytes);
int cudaFree(double *ptr);
int cudaMemcpy(double *dst, const double *src, int bytes, int kind);
int cudaDeviceSynchronize();
int cudaGetLastError();
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;
`

const headerHipRuntime = `// <hip/hip_runtime.h>: non-trivial runtime helpers ship in the header
struct dim3 {
	int x;
	int y;
	int z;
	dim3(int xx) {
		x = xx;
		y = 1;
		z = 1;
	}
};

dim3 threadIdx = dim3(0);
dim3 blockIdx = dim3(0);
dim3 blockDim = dim3(1);
dim3 gridDim = dim3(1);

int hipMalloc(double **ptr, int bytes);
int hipFree(double *ptr);
int hipMemcpy(double *dst, const double *src, int bytes, int kind);
int hipDeviceSynchronize();
int hipGetLastError();
int hipMemcpyHostToDevice = 1;
int hipMemcpyDeviceToHost = 2;

inline int hipGridSizeX(int total, int block) {
	return (total + block - 1) / block;
}

inline int hipCheckStatus(int status) {
	if (status != 0) {
		return status;
	}
	return 0;
}

inline int hipRoundUp(int value, int multiple) {
	int rem = value % multiple;
	if (rem == 0) {
		return value;
	}
	return value + multiple - rem;
}
`

const headerKokkos = `// <Kokkos_Core.hpp>: library model — opinionated API with inlineable bodies
#define KOKKOS_LAMBDA(args) [=](args)
#define KOKKOS_INLINE_FUNCTION inline

namespace Kokkos {

void initialize();
void finalize();

inline void fence() {
	int barrier = 0;
	barrier = barrier + 1;
}

template <typename T>
struct View {
	T *data_;
	int extent_;
	View(const char *label, int n) {
		extent_ = n;
	}
	T operator()(int i) const {
		return data_[i];
	}
	int extent(int rank) const {
		return extent_;
	}
	int size() const {
		return extent_;
	}
};

template <typename R>
struct RangePolicy {
	int begin_;
	int end_;
	RangePolicy(int lo, int hi) {
		begin_ = lo;
		end_ = hi;
	}
	int begin() const { return begin_; }
	int end() const { return end_; }
};

template <typename R>
struct MDRangePolicy {
	int lo0;
	int lo1;
	int hi0;
	int hi1;
};

template <int N>
struct Rank {
	int rank;
};

template <typename T>
struct Min {
	T value;
	Min(T &v) {
		value = v;
	}
};

template <typename P, typename F>
inline void parallel_for(const char *label, P policy, F functor) {
	int i = policy.begin();
	while (i < policy.end()) {
		functor(i);
		i = i + 1;
	}
}

template <typename P, typename F, typename R>
inline void parallel_reduce(const char *label, P policy, F functor, R result) {
	int i = policy.begin();
	while (i < policy.end()) {
		functor(i, result);
		i = i + 1;
	}
}

}
`

const headerSYCL = `// <sycl/sycl.hpp>: heavily templated API surface; the semantic weight of
// the model lives here, largely invisible at the source level.
#define SYCL_EXTERNAL
#define SYCL_BINOP(T, OP, NAME) inline T vec_NAME_T(T x, T y) { return x OP y; }
#define SYCL_DEFINE_VEC_OPS(T) SYCL_BINOP(T, +, add) SYCL_BINOP(T, -, sub) SYCL_BINOP(T, *, mul) SYCL_BINOP(T, /, div)
#define SYCL_DEFINE_CMP_OPS(T) SYCL_BINOP(T, <, lt) SYCL_BINOP(T, >, gt)

namespace sycl {

SYCL_DEFINE_VEC_OPS(double)
SYCL_DEFINE_VEC_OPS(float)
SYCL_DEFINE_VEC_OPS(int)
SYCL_DEFINE_VEC_OPS(long)
SYCL_DEFINE_CMP_OPS(double)
SYCL_DEFINE_CMP_OPS(float)
SYCL_DEFINE_CMP_OPS(int)

int default_selector_v = 0;
int gpu_selector_v = 1;
int cpu_selector_v = 2;

namespace access {
namespace mode {
int read = 0;
int write = 1;
int read_write = 2;
}
}

template <int Dims>
struct id {
	int values[3];
	id(int i0) {
		values[0] = i0;
	}
	int operator[](int d) const {
		return values[d];
	}
};

template <int Dims>
struct range {
	int extents[3];
	range(int e0) {
		extents[0] = e0;
	}
	range(int e0, int e1) {
		extents[0] = e0;
		extents[1] = e1;
	}
	int size() const {
		int total = extents[0];
		if (Dims > 1) {
			total = total * extents[1];
		}
		return total;
	}
	int get(int d) const {
		return extents[d];
	}
};

template <typename T, int Dims>
struct accessor {
	T *data_;
	int extent_;
	T operator[](int i) const {
		return data_[i];
	}
};

template <typename T, int Dims>
struct buffer {
	T *host_;
	int extent_;
	buffer(range<1> r) {
		extent_ = r.size();
	}
	buffer(T *host, range<1> r) {
		host_ = host;
		extent_ = r.size();
	}
	template <typename M>
	accessor<T, Dims> get_access(int handler_tag) {
		accessor<T, Dims> acc;
		acc.extent_ = extent_;
		return acc;
	}
	int size() const {
		return extent_;
	}
};

template <typename T>
struct host_accessor {
	T *data_;
	host_accessor(buffer<T, 1> &b) {
		data_ = b.host_;
	}
	T operator[](int i) const {
		return data_[i];
	}
};

struct handler {
	int device_;
	template <typename R, typename F>
	void parallel_for(R r, F functor) {
		int i = 0;
		while (i < r.size()) {
			functor(id<1>(i));
			i = i + 1;
		}
	}
	template <typename R, typename Red, typename F>
	void parallel_for(R r, Red reducer, F functor) {
		int i = 0;
		while (i < r.size()) {
			functor(id<1>(i), reducer);
			i = i + 1;
		}
	}
};

struct event {
	int status_;
	void wait() {
		status_ = 0;
	}
};

struct queue {
	int device_;
	queue(int selector) {
		device_ = selector;
	}
	template <typename F>
	event submit(F command_group) {
		handler h;
		command_group(h);
		event e;
		return e;
	}
	template <typename R, typename F>
	event parallel_for(R r, F functor) {
		handler h;
		h.parallel_for(r, functor);
		event e;
		return e;
	}
	void wait() {
		device_ = device_;
	}
	event memcpy(double *dst, const double *src, int bytes) {
		event e;
		return e;
	}
};

template <typename T>
T *malloc_device(int count, queue &q) {
	return nullptr;
}

template <typename T>
T *malloc_shared(int count, queue &q) {
	return nullptr;
}

void free(double *ptr, queue &q);

template <typename T>
struct plus {
	T operator()(T x, T y) const {
		return x + y;
	}
};

template <typename T>
struct minimum {
	T operator()(T x, T y) const {
		if (x < y) {
			return x;
		}
		return y;
	}
};

template <typename B, typename C>
int reduction(B buf, C combiner) {
	return 0;
}

template <typename B, typename H, typename C>
int reduction(B buf, H h, C combiner) {
	return 0;
}

}
`

const headerTBB = `// <tbb/tbb.h>: library model with STL-inspired combinators
namespace tbb {

template <typename T>
struct blocked_range {
	T begin_;
	T end_;
	T grain_;
	blocked_range(T lo, T hi) {
		begin_ = lo;
		end_ = hi;
		grain_ = 1;
	}
	T begin() const {
		return begin_;
	}
	T end() const {
		return end_;
	}
	T size() const {
		return end_ - begin_;
	}
};

template <typename R, typename F>
inline void parallel_for(R rng, F functor) {
	functor(rng);
}

template <typename R, typename T, typename F, typename C>
inline T parallel_reduce(R rng, T identity, F functor, C combiner) {
	T acc = functor(rng, identity);
	return combiner(identity, acc);
}

struct task_arena {
	int threads_;
	task_arena(int n) {
		threads_ = n;
	}
	int max_concurrency() const {
		return threads_;
	}
};

}
`

const headerVector = `// <vector> (system)
namespace std {

template <typename T>
struct vector {
	T *data_;
	int size_;
	vector(int n, T fill) {
		size_ = n;
	}
	T *data() {
		return data_;
	}
	int size() const {
		return size_;
	}
	T operator[](int i) const {
		return data_[i];
	}
};

}
`

const headerAlgorithm = `// <algorithm> (system): parallel algorithm entry points
namespace std {

template <typename P, typename I, typename F>
void for_each(P policy, I first, I last, F functor);

template <typename P, typename I, typename T, typename C, typename F>
T transform_reduce(P policy, I first, I last, T init, C combiner, F transform);

}
`

const headerExecution = `// <execution> (system): execution policies
namespace std {
namespace execution {

struct sequenced_policy {
	int tag;
};
struct parallel_policy {
	int tag;
};
struct parallel_unsequenced_policy {
	int tag;
};

parallel_unsequenced_policy par_unseq;
parallel_policy par;
sequenced_policy seq;

}
}
`

const headerRanges = `// <ranges> (system): iota views
namespace std {
namespace views {

struct iota_view {
	int lo_;
	int hi_;
	iota_view(int lo, int hi) {
		lo_ = lo;
		hi_ = hi;
	}
	int begin() const {
		return lo_;
	}
	int end() const {
		return hi_;
	}
};

iota_view iota(int lo, int hi) {
	return iota_view(lo, hi);
}

}
}
`
