package corpus

// BabelStream is the McCalpin STREAM benchmark in heterogeneous models:
// five short memory-bandwidth kernels over three arrays.
func BabelStream() App {
	roA := []Param{
		{Name: "a", Type: "double", Const: true},
		{Name: "b", Type: "double"},
		{Name: "c", Type: "double", Const: true},
	}
	n := Param{Name: "n", Type: "int"}
	scalar := Param{Name: "scalar", Type: "double"}
	dim := []Dim{{Var: "i", Lo: "0", Hi: "n"}}

	return App{
		Name:         "babelstream",
		Lang:         LangCXX,
		Type:         "Memory BW",
		ProblemSizes: []string{"n"},
		DefaultSize:  64,
		Iters:        3,
		Kernels: []Kernel{
			{
				Name:    "copy",
				Dims:    dim,
				Arrays:  []Param{{Name: "a", Type: "double", Const: true}, {Name: "c", Type: "double"}},
				Scalars: []Param{n},
				Body:    []string{"c[i] = a[i];"},
				FBody:   []string{"c(i) = a(i)"},
				FArrayForm: []string{
					"c = a",
				},
			},
			{
				Name:    "mul",
				Dims:    dim,
				Arrays:  []Param{{Name: "b", Type: "double"}, {Name: "c", Type: "double", Const: true}},
				Scalars: []Param{scalar, n},
				Body:    []string{"b[i] = scalar * c[i];"},
				FBody:   []string{"b(i) = scalar * c(i)"},
				FArrayForm: []string{
					"b = scalar * c",
				},
			},
			{
				Name:    "add",
				Dims:    dim,
				Arrays:  []Param{{Name: "a", Type: "double", Const: true}, {Name: "b", Type: "double", Const: true}, {Name: "c", Type: "double"}},
				Scalars: []Param{n},
				Body:    []string{"c[i] = a[i] + b[i];"},
				FBody:   []string{"c(i) = a(i) + b(i)"},
				FArrayForm: []string{
					"c = a + b",
				},
			},
			{
				Name:    "triad",
				Dims:    dim,
				Arrays:  roA,
				Scalars: []Param{scalar, n},
				Body:    []string{"a[i] = b[i] + scalar * c[i];"},
				FBody:   []string{"a(i) = b(i) + scalar * c(i)"},
				FArrayForm: []string{
					"a = b + scalar * c",
				},
			},
			{
				Name:    "dot",
				Dims:    dim,
				Arrays:  []Param{{Name: "a", Type: "double", Const: true}, {Name: "b", Type: "double", Const: true}},
				Scalars: []Param{n},
				Red: &Reduction{
					Var:  "sum",
					Op:   "+",
					Init: "0.0",
					Expr: "a[i] * b[i]",
				},
				FRedExpr: "a(i) * b(i)",
			},
		},
	}
}

// BabelStreamFortran is the Fortran port of BabelStream evaluated in
// Section V.B, with the seven model variants of Table II.
func BabelStreamFortran() App {
	app := BabelStream()
	app.Name = "babelstream-fortran"
	app.Lang = LangFortran
	app.Type = "Memory BW"
	return app
}

// MiniBUDE is the molecular-docking compute benchmark: one dominant
// compute-bound kernel evaluating pose energies, plus a small
// initialisation kernel — "the code has a higher ratio of boilerplate to
// actual algorithm as the computational kernels are relatively short".
func MiniBUDE() App {
	return App{
		Name:         "minibude",
		Lang:         LangCXX,
		Type:         "Compute",
		ProblemSizes: []string{"nposes"},
		DefaultSize:  16,
		Iters:        2,
		Kernels: []Kernel{
			{
				Name: "zero_energies",
				Dims: []Dim{{Var: "i", Lo: "0", Hi: "nposes"}},
				Arrays: []Param{
					{Name: "energies", Type: "double"},
				},
				Scalars: []Param{{Name: "nposes", Type: "int"}},
				Body:    []string{"energies[i] = 0.0;"},
				FBody:   []string{"energies(i) = 0.0d0"},
			},
			{
				Name: "fasten_main",
				Dims: []Dim{{Var: "i", Lo: "0", Hi: "nposes"}},
				Arrays: []Param{
					{Name: "protein_x", Type: "double", Const: true},
					{Name: "protein_y", Type: "double", Const: true},
					{Name: "protein_z", Type: "double", Const: true},
					{Name: "protein_q", Type: "double", Const: true},
					{Name: "ligand_x", Type: "double", Const: true},
					{Name: "ligand_y", Type: "double", Const: true},
					{Name: "ligand_z", Type: "double", Const: true},
					{Name: "ligand_q", Type: "double", Const: true},
					{Name: "poses_x", Type: "double", Const: true},
					{Name: "poses_y", Type: "double", Const: true},
					{Name: "poses_z", Type: "double", Const: true},
					{Name: "energies", Type: "double"},
				},
				Scalars: []Param{
					{Name: "natlig", Type: "int"},
					{Name: "natpro", Type: "int"},
					{Name: "nposes", Type: "int"},
				},
				Body: []string{
					"double etot = 0.0;",
					"for (int l = 0; l < natlig; l++) {",
					"\tdouble lx = ligand_x[l] + poses_x[i];",
					"\tdouble ly = ligand_y[l] + poses_y[i];",
					"\tdouble lz = ligand_z[l] + poses_z[i];",
					"\tdouble lq = ligand_q[l];",
					"\tfor (int p = 0; p < natpro; p++) {",
					"\t\tdouble dx = protein_x[p] - lx;",
					"\t\tdouble dy = protein_y[p] - ly;",
					"\t\tdouble dz = protein_z[p] - lz;",
					"\t\tdouble r = sqrt(dx * dx + dy * dy + dz * dz) + 0.5;",
					"\t\tdouble pq = protein_q[p];",
					"\t\tetot += pq * lq / r;",
					"\t}",
					"}",
					"energies[i] = etot * 0.5;",
				},
				FBody: []string{
					"etot = 0.0d0",
					"do l = 1, natlig",
					"  lx = ligand_x(l) + poses_x(i)",
					"  ly = ligand_y(l) + poses_y(i)",
					"  lz = ligand_z(l) + poses_z(i)",
					"  do p = 1, natpro",
					"    dx = protein_x(p) - lx",
					"    dy = protein_y(p) - ly",
					"    dz = protein_z(p) - lz",
					"    r = sqrt(dx * dx + dy * dy + dz * dz) + 0.5d0",
					"    etot = etot + protein_q(p) * ligand_q(l) / r",
					"  end do",
					"end do",
					"energies(i) = etot * 0.5d0",
				},
			},
		},
	}
}
