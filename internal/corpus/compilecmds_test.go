package corpus

import (
	"strings"
	"testing"

	"silvervale/internal/compdb"
)

func TestCompileCommandsModelFlags(t *testing.T) {
	app, _ := AppByName("babelstream")
	cases := []struct {
		model Model
		want  string
	}{
		{Serial, "clang++"},
		{OpenMP, "-fopenmp"},
		{OpenMPTarget, "-fopenmp-targets"},
		{CUDA, "--cuda-gpu-arch"},
		{HIP, "-x hip"},
		{SYCLACC, "-fsycl"},
		{StdPar, "nvc++"},
		{TBB, "-ltbb"},
	}
	for _, c := range cases {
		cb, err := Generate(app, c.model)
		if err != nil {
			t.Fatal(err)
		}
		db := cb.CompileCommands("/build")
		if len(db.Entries) != len(cb.Units) {
			t.Fatalf("%s: entries = %d", c.model, len(db.Entries))
		}
		found := false
		for _, e := range db.Entries {
			if strings.Contains(e.Command, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: flag %q missing from commands", c.model, c.want)
		}
	}
}

func TestCompileCommandsFortran(t *testing.T) {
	app, _ := AppByName("babelstream-fortran")
	for _, m := range []Model{FOpenMP, FOpenACC, FSequential} {
		cb, err := Generate(app, m)
		if err != nil {
			t.Fatal(err)
		}
		db := cb.CompileCommands("/build")
		for _, e := range db.Entries {
			if !strings.HasPrefix(e.Command, "gfortran") {
				t.Fatalf("%s: compiler = %q", m, e.Command)
			}
		}
	}
}

// TestCompileCommandsRoundTripModelDetection: the synthesized flags must be
// recognised by the compdb model classifier — closing the generate→ingest
// loop at the flag level.
func TestCompileCommandsRoundTripModelDetection(t *testing.T) {
	app, _ := AppByName("babelstream")
	expectations := map[Model]string{
		Serial:       "serial",
		OpenMP:       "omp",
		OpenMPTarget: "omp-target",
		CUDA:         "cuda",
		HIP:          "hip",
		SYCLACC:      "sycl",
		SYCLUSM:      "sycl",
	}
	for model, want := range expectations {
		cb, err := Generate(app, model)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := cb.CompileCommands("/b").Marshal()
		if err != nil {
			t.Fatal(err)
		}
		db, err := compdb.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if got := db.Entries[0].Model(); got != want {
			t.Errorf("%s: detected %q, want %q (%s)", model, got, want, db.Entries[0].Command)
		}
	}
}
