package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// generateCXX assembles the full codebase for a C++ app × model: the
// kernels translation unit, the driver, a kernels header with prototypes,
// and the model runtime headers the unit pulls in (Eq. 1 makes headers part
// of the unit, which is where SYCL's semantic weight comes from).
func generateCXX(app App, model Model) (*Codebase, error) {
	r := &cxxRenderer{app: app, model: model}
	kernels := r.renderKernels()
	protoHeader := r.renderKernelsHeader()
	mainSrc := r.renderMain()

	kernelsFile := "kernels.cpp"
	switch model {
	case CUDA:
		kernelsFile = "kernels.cu"
	case HIP:
		kernelsFile = "kernels.hip.cpp"
	}

	files := map[string]string{
		kernelsFile:  kernels,
		"main.cpp":   mainSrc,
		"kernels.h":  protoHeader,
		"cstdio":     headerCstdio,
		"cmath":      headerCmath,
		"sim_config": "", // placeholder removed below
	}
	delete(files, "sim_config")
	system := map[string]bool{"cstdio": true, "cmath": true}
	for name, content := range modelHeaders(model) {
		files[name] = content
		system[name] = modelHeaderIsSystem(name)
	}
	return &Codebase{
		App:   app.Name,
		Model: model,
		Lang:  LangCXX,
		Files: files,
		Units: []Unit{
			{File: "main.cpp", Role: "driver"},
			{File: kernelsFile, Role: "kernels"},
		},
		System: system,
	}, nil
}

// renderKernelsHeader emits prototypes shared by main and the kernels unit.
func (r *cxxRenderer) renderKernelsHeader() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s kernel prototypes — %s model\n", r.app.Name, r.model)
	switch r.model {
	case Kokkos:
		b.WriteString("#include <Kokkos_Core.hpp>\n")
	case SYCLACC, SYCLUSM:
		b.WriteString("#include <sycl/sycl.hpp>\n")
	}
	b.WriteString("\n")
	for i := range r.app.Kernels {
		k := &r.app.Kernels[i]
		fmt.Fprintf(&b, "%s;\n", r.hostSignature(k))
	}
	return b.String()
}

// scalarDefault supplies a plausible constant for each free scalar.
func scalarDefault(p Param) string {
	switch p.Name {
	case "scalar":
		return "0.4"
	case "alpha":
		return "0.5"
	case "beta":
		return "0.3"
	case "dt":
		return "0.04"
	case "dx":
		return "0.1"
	case "natlig":
		return "8"
	case "natpro":
		return "12"
	}
	if p.Type == "int" {
		return "8"
	}
	return "0.1"
}

// appArrays returns the union of array parameters across kernels, sorted.
func appArrays(app App) []Param {
	seen := map[string]Param{}
	for i := range app.Kernels {
		for _, a := range app.Kernels[i].Arrays {
			if prev, ok := seen[a.Name]; !ok || (prev.Const && !a.Const) {
				seen[a.Name] = a
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Param, 0, len(names))
	for _, n := range names {
		out = append(out, seen[n])
	}
	return out
}

// appScalars returns free scalar params (excluding problem sizes and
// reduction outputs), sorted.
func appScalars(app App) []Param {
	sizes := map[string]bool{}
	for _, s := range app.ProblemSizes {
		sizes[s] = true
	}
	seen := map[string]Param{}
	for i := range app.Kernels {
		for _, s := range app.Kernels[i].Scalars {
			if !sizes[s.Name] {
				seen[s.Name] = s
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Param, 0, len(names))
	for _, n := range names {
		out = append(out, seen[n])
	}
	return out
}

// initValue supplies the host initial value per array (BabelStream's
// verification depends on a=0.1, b=0.2, c=0.0).
func initValue(app App, name string) string {
	if app.Name == "babelstream" || app.Name == "babelstream-fortran" {
		switch name {
		case "a":
			return "0.1"
		case "b":
			return "0.2"
		case "c":
			return "0.0"
		}
	}
	switch {
	case strings.HasPrefix(name, "protein"), strings.HasPrefix(name, "ligand"):
		return "0.3"
	case strings.HasPrefix(name, "poses"):
		return "0.2"
	case name == "kx" || name == "ky":
		return "0.05"
	}
	return "0.0"
}

// sizeExpr is the element count of every array.
func sizeExpr(app App) string {
	if len(app.ProblemSizes) == 2 {
		return "nx * ny"
	}
	return app.ProblemSizes[0]
}

// renderMain emits the driver translation unit.
func (r *cxxRenderer) renderMain() string {
	r.b.Reset()
	app := r.app
	arrays := appArrays(app)
	scalars := appScalars(app)

	r.line("// %s driver — %s model", app.Name, r.model)
	r.line("#include <cstdio>")
	r.line("#include <cmath>")
	r.line("#include \"kernels.h\"")
	switch r.model {
	case CUDA:
		r.line("#include <cuda_runtime.h>")
	case HIP:
		r.line("#include <hip/hip_runtime.h>")
	case Kokkos:
		r.line("#include <Kokkos_Core.hpp>")
	case SYCLACC:
		r.line("#include <sycl/sycl.hpp>")
		r.line("#include <vector>")
	case SYCLUSM:
		r.line("#include <sycl/sycl.hpp>")
	case StdPar:
		r.line("#include <vector>")
	case TBB:
		r.line("#include <tbb/tbb.h>")
	case OpenMP, OpenMPTarget:
		r.line("#include <omp.h>")
	}
	r.blank()
	r.line("int main() {")
	for _, s := range app.ProblemSizes {
		r.line("\tint %s = %d;", s, app.DefaultSize)
	}
	size := sizeExpr(app)
	r.line("\tint total_size = %s;", size)
	for _, s := range scalars {
		r.line("\t%s %s = %s;", s.Type, s.Name, scalarDefault(s))
	}
	r.blank()
	r.renderAllocation(arrays)
	r.blank()
	r.renderMainLoop(arrays)
	r.blank()
	r.renderVerification(arrays)
	r.renderTeardown(arrays)
	r.line("\treturn rc;")
	r.line("}")
	return r.b.String()
}

// renderAllocation emits model-specific array setup and initialisation.
func (r *cxxRenderer) renderAllocation(arrays []Param) {
	app := r.app
	switch r.model {
	case Kokkos:
		r.line("\tKokkos::initialize();")
		for _, a := range arrays {
			r.line("\tKokkos::View<%s*> %s(\"%s\", total_size);", a.Type, a.Name, a.Name)
		}
		r.line("\tKokkos::parallel_for(\"setup\", total_size, KOKKOS_LAMBDA(const int v) {")
		for _, a := range arrays {
			r.line("\t\t%s(v) = %s;", a.Name, initValue(app, a.Name))
		}
		r.line("\t});")
		r.line("\tKokkos::fence();")
	case SYCLACC:
		r.line("\tsycl::queue q(sycl::default_selector_v);")
		for _, a := range arrays {
			r.line("\tstd::vector<%s> h_%s(total_size, %s);", a.Type, a.Name, initValue(app, a.Name))
		}
		for _, a := range arrays {
			r.line("\tsycl::buffer<%s, 1> d_%s(h_%s.data(), sycl::range<1>(total_size));",
				a.Type, a.Name, a.Name)
		}
	case SYCLUSM:
		r.line("\tsycl::queue q(sycl::default_selector_v);")
		for _, a := range arrays {
			r.line("\t%s *%s = sycl::malloc_device<%s>(total_size, q);", a.Type, a.Name, a.Type)
		}
		r.line("\tq.parallel_for(sycl::range<1>(total_size), [=](sycl::id<1> gid) {")
		r.line("\t\tint v = gid[0];")
		for _, a := range arrays {
			r.line("\t\t%s[v] = %s;", a.Name, initValue(app, a.Name))
		}
		r.line("\t}).wait();")
	case CUDA, HIP:
		api := "cuda"
		if r.model == HIP {
			api = "hip"
		}
		for _, a := range arrays {
			r.line("\t%s *h_%s = new %s[total_size];", a.Type, a.Name, a.Type)
		}
		r.line("\tfor (int v = 0; v < total_size; v++) {")
		for _, a := range arrays {
			r.line("\t\th_%s[v] = %s;", a.Name, initValue(app, a.Name))
		}
		r.line("\t}")
		for _, a := range arrays {
			r.line("\t%s *d_%s;", a.Type, a.Name)
			r.line("\t%sMalloc(&d_%s, total_size * sizeof(%s));", api, a.Name, a.Type)
			r.line("\t%sMemcpy(d_%s, h_%s, total_size * sizeof(%s), %sMemcpyHostToDevice);",
				api, a.Name, a.Name, a.Type, api)
		}
		if r.hasReduction() {
			r.line("\tdouble *d_partial;")
			r.line("\t%sMalloc(&d_partial, 256 * sizeof(double));", api)
		}
	default: // serial, omp, omp-target, stdpar, tbb
		for _, a := range arrays {
			r.line("\t%s *%s = new %s[total_size];", a.Type, a.Name, a.Type)
		}
		r.line("\tfor (int v = 0; v < total_size; v++) {")
		for _, a := range arrays {
			r.line("\t\t%s[v] = %s;", a.Name, initValue(app, a.Name))
		}
		r.line("\t}")
		if r.model == OpenMPTarget {
			var maps []string
			for _, a := range arrays {
				maps = append(maps, fmt.Sprintf("%s[0:total_size]", a.Name))
			}
			r.line("\t#pragma omp target enter data map(to: %s)", strings.Join(maps, ", "))
		}
	}
}

func (r *cxxRenderer) hasReduction() bool {
	for i := range r.app.Kernels {
		if r.app.Kernels[i].IsReduction() {
			return true
		}
	}
	return false
}

// callArgs renders the argument list for invoking a kernel from main.
func (r *cxxRenderer) callArgs(k *Kernel) string {
	var args []string
	switch r.model {
	case SYCLACC:
		args = append(args, "q")
		for _, a := range k.Arrays {
			args = append(args, "d_"+a.Name)
		}
	case SYCLUSM:
		args = append(args, "q")
		for _, a := range k.Arrays {
			args = append(args, a.Name)
		}
	case CUDA, HIP:
		for _, a := range k.Arrays {
			args = append(args, "d_"+a.Name)
		}
		if k.IsReduction() {
			args = append(args, "d_partial")
		}
	default:
		for _, a := range k.Arrays {
			args = append(args, a.Name)
		}
	}
	for _, s := range k.Scalars {
		args = append(args, s.Name)
	}
	return strings.Join(args, ", ")
}

// renderMainLoop emits the timed iteration loop calling every kernel.
func (r *cxxRenderer) renderMainLoop(arrays []Param) {
	app := r.app
	declared := map[string]bool{}
	for _, s := range appScalars(app) {
		declared[s.Name] = true
	}
	if r.hasReduction() {
		r.line("\tdouble last_result = 0.0;")
	}
	r.line("\tfor (int iter = 0; iter < %d; iter++) {", app.Iters)
	for i := range app.Kernels {
		k := &app.Kernels[i]
		if k.IsReduction() {
			if declared[k.Red.Var] {
				r.line("\t\t%s = %s(%s);", k.Red.Var, k.Name, r.callArgs(k))
			} else {
				r.line("\t\tdouble %s = %s(%s);", k.Red.Var, k.Name, r.callArgs(k))
				r.line("\t\tlast_result = %s;", k.Red.Var)
			}
		} else {
			r.line("\t\t%s(%s);", k.Name, r.callArgs(k))
		}
	}
	r.line("\t}")
}

// renderVerification emits the built-in correctness check.
func (r *cxxRenderer) renderVerification(arrays []Param) {
	app := r.app
	// bring device data home where needed
	switch r.model {
	case CUDA, HIP:
		api := "cuda"
		if r.model == HIP {
			api = "hip"
		}
		for _, a := range arrays {
			r.line("\t%sMemcpy(h_%s, d_%s, total_size * sizeof(%s), %sMemcpyDeviceToHost);",
				api, a.Name, a.Name, a.Type, api)
		}
	case OpenMPTarget:
		var maps []string
		for _, a := range arrays {
			maps = append(maps, fmt.Sprintf("%s[0:total_size]", a.Name))
		}
		r.line("\t#pragma omp target exit data map(from: %s)", strings.Join(maps, ", "))
	case SYCLUSM:
		for _, a := range arrays {
			r.line("\t%s *h_%s = new %s[total_size];", a.Type, a.Name, a.Type)
			r.line("\tq.memcpy(h_%s, %s, total_size * sizeof(%s));", a.Name, a.Name, a.Type)
		}
		r.line("\tq.wait();")
	case SYCLACC:
		// buffers write back into the host vectors on destruction; read via
		// host accessors for the arrays we verify
	}
	prefix := r.hostArrayPrefix()
	r.line("\tint rc = 0;")
	if app.Name == "babelstream" {
		r.line("\tdouble gold_a = 0.1;")
		r.line("\tdouble gold_b = 0.2;")
		r.line("\tdouble gold_c = 0.0;")
		r.line("\tdouble gold_sum = 0.0;")
		r.line("\tfor (int iter = 0; iter < %d; iter++) {", app.Iters)
		r.line("\t\tgold_c = gold_a;")
		r.line("\t\tgold_b = scalar * gold_c;")
		r.line("\t\tgold_c = gold_a + gold_b;")
		r.line("\t\tgold_a = gold_b + scalar * gold_c;")
		r.line("\t\tgold_sum = gold_a * gold_b * total_size;")
		r.line("\t}")
		switch r.model {
		case Kokkos:
			r.line("\tdouble err = 0.0;")
			r.line("\tKokkos::parallel_reduce(\"verify\", total_size, KOKKOS_LAMBDA(const int v, double &update) {")
			r.line("\t\tupdate += fabs(a(v) - gold_a) + fabs(b(v) - gold_b) + fabs(c(v) - gold_c);")
			r.line("\t}, err);")
		case SYCLACC:
			r.line("\tsycl::host_accessor va(d_a);")
			r.line("\tsycl::host_accessor vb(d_b);")
			r.line("\tsycl::host_accessor vc(d_c);")
			r.line("\tdouble err = 0.0;")
			r.line("\tfor (int v = 0; v < total_size; v++) {")
			r.line("\t\terr += fabs(va[v] - gold_a) + fabs(vb[v] - gold_b) + fabs(vc[v] - gold_c);")
			r.line("\t}")
		default:
			r.line("\tdouble err = 0.0;")
			r.line("\tfor (int v = 0; v < total_size; v++) {")
			r.line("\t\terr += fabs(%sa[v] - gold_a) + fabs(%sb[v] - gold_b) + fabs(%sc[v] - gold_c);",
				prefix, prefix, prefix)
			r.line("\t}")
		}
		r.line("\tif (err < 0.0001) {")
		r.line("\t\tprintf(\"Validation PASSED\");")
		r.line("\t} else {")
		r.line("\t\tprintf(\"Validation FAILED\", err);")
		r.line("\t\trc = 1;")
		r.line("\t}")
	} else {
		// generic finite-result check against the final reduction (or a
		// probe element when the app has none)
		if r.hasReduction() {
			r.line("\tdouble check = last_result;")
		} else {
			r.line("\tdouble check = 0.0;")
		}
		r.line("\tif (check == check) {")
		r.line("\t\tprintf(\"Validation PASSED\", check);")
		r.line("\t} else {")
		r.line("\t\tprintf(\"Validation FAILED\");")
		r.line("\t\trc = 1;")
		r.line("\t}")
	}
}

// hostArrayPrefix is how main names host-visible copies of the arrays.
func (r *cxxRenderer) hostArrayPrefix() string {
	switch r.model {
	case CUDA, HIP, SYCLUSM:
		return "h_"
	}
	return ""
}

// renderTeardown releases resources.
func (r *cxxRenderer) renderTeardown(arrays []Param) {
	switch r.model {
	case Kokkos:
		r.line("\tKokkos::finalize();")
	case CUDA, HIP:
		api := "cuda"
		if r.model == HIP {
			api = "hip"
		}
		for _, a := range arrays {
			r.line("\t%sFree(d_%s);", api, a.Name)
			r.line("\tdelete[] h_%s;", a.Name)
		}
		if r.hasReduction() {
			r.line("\t%sFree(d_partial);", api)
		}
	case SYCLUSM:
		for _, a := range arrays {
			r.line("\tsycl::free(%s, q);", a.Name)
			r.line("\tdelete[] h_%s;", a.Name)
		}
	case SYCLACC:
		// RAII
	default:
		for _, a := range arrays {
			r.line("\tdelete[] %s;", a.Name)
		}
	}
}
