package corpus

import (
	"fmt"
	"strings"
)

// cxxRenderer renders one app × model into MiniC sources.
type cxxRenderer struct {
	app   App
	model Model
	b     strings.Builder
}

func (r *cxxRenderer) line(format string, args ...any) {
	fmt.Fprintf(&r.b, format, args...)
	r.b.WriteByte('\n')
}

func (r *cxxRenderer) blank() { r.b.WriteByte('\n') }

// is2D reports whether a kernel iterates two parallel dimensions.
func is2D(k *Kernel) bool { return len(k.Dims) == 2 }

// paramDecl renders an array parameter for the pointer-based models.
func paramDecl(p Param, elemOnly bool) string {
	if elemOnly {
		return fmt.Sprintf("%s %s", p.Type, p.Name)
	}
	if p.Const {
		return fmt.Sprintf("const %s *%s", p.Type, p.Name)
	}
	return fmt.Sprintf("%s *%s", p.Type, p.Name)
}

// hostSignature renders the kernel's host-function signature for the model.
func (r *cxxRenderer) hostSignature(k *Kernel) string {
	ret := "void"
	if k.IsReduction() {
		ret = "double"
	}
	var parts []string
	switch r.model {
	case Kokkos:
		for _, a := range k.Arrays {
			parts = append(parts, fmt.Sprintf("Kokkos::View<%s*> %s", a.Type, a.Name))
		}
	case SYCLACC:
		parts = append(parts, "sycl::queue &q")
		for _, a := range k.Arrays {
			parts = append(parts, fmt.Sprintf("sycl::buffer<%s, 1> &d_%s", a.Type, a.Name))
		}
	case SYCLUSM:
		parts = append(parts, "sycl::queue &q")
		for _, a := range k.Arrays {
			parts = append(parts, paramDecl(a, false))
		}
	default:
		for _, a := range k.Arrays {
			parts = append(parts, paramDecl(a, false))
		}
	}
	if (r.model == CUDA || r.model == HIP) && k.IsReduction() {
		parts = append(parts, "double *d_partial")
	}
	for _, s := range k.Scalars {
		parts = append(parts, paramDecl(s, true))
	}
	return fmt.Sprintf("%s %s(%s)", ret, k.Name, strings.Join(parts, ", "))
}

// indentBody emits the kernel body statements at the given indent, applying
// the access rewrite for paren-indexed models.
func (r *cxxRenderer) indentBody(k *Kernel, indent string, parenAccess bool) {
	arrays := k.arraySet()
	for _, stmt := range k.Body {
		s := stmt
		if parenAccess {
			s = bracketToParen(s, arrays)
		}
		r.line("%s%s", indent, strings.ReplaceAll(s, "\t", "\t"))
	}
}

// redExpr renders the reduction expression (paren-rewritten when needed).
func (r *cxxRenderer) redExpr(k *Kernel, parenAccess bool) string {
	e := k.Red.Expr
	if parenAccess {
		e = bracketToParen(e, k.arraySet())
	}
	return e
}

// accumStmt renders the serial-style accumulation into a variable.
func accumStmt(varName, op, expr string) string {
	if op == "min" {
		return fmt.Sprintf("%s = fmin(%s, %s);", varName, varName, expr)
	}
	return fmt.Sprintf("%s += %s;", varName, expr)
}

// ompRedClause renders the OpenMP reduction clause.
func ompRedClause(red *Reduction) string {
	return fmt.Sprintf("reduction(%s:%s)", red.Op, red.Var)
}

// spanDecls emits the flattened-range prologue used by CUDA/HIP/SYCL/StdPar
// for 2-D kernels and returns the guard extent expression.
func (r *cxxRenderer) spanExprs(k *Kernel) (jspan, ispan string) {
	dj, di := k.Dims[0], k.Dims[1]
	return fmt.Sprintf("(%s) - (%s)", dj.Hi, dj.Lo), fmt.Sprintf("(%s) - (%s)", di.Hi, di.Lo)
}

// renderKernels renders the kernels translation unit for the model.
func (r *cxxRenderer) renderKernels() string {
	r.b.Reset()
	r.line("// %s kernels — %s model", r.app.Name, r.model)
	switch r.model {
	case CUDA:
		r.line("#include <cuda_runtime.h>")
	case HIP:
		r.line("#include <hip/hip_runtime.h>")
	case Kokkos:
		r.line("#include <Kokkos_Core.hpp>")
	case SYCLACC, SYCLUSM:
		r.line("#include <sycl/sycl.hpp>")
	case StdPar:
		r.line("#include <algorithm>")
		r.line("#include <execution>")
		r.line("#include <ranges>")
	case TBB:
		r.line("#include <tbb/tbb.h>")
	case OpenMP, OpenMPTarget:
		r.line("#include <omp.h>")
	}
	r.line("#include <cmath>")
	if r.model == CUDA || r.model == HIP {
		r.line("#define TBSIZE 256")
		r.line("#define NBLOCKS 256")
	}
	r.blank()
	for i := range r.app.Kernels {
		k := &r.app.Kernels[i]
		switch r.model {
		case Serial:
			r.renderSerialKernel(k, "")
		case OpenMP:
			r.renderOpenMPKernel(k, false)
		case OpenMPTarget:
			r.renderOpenMPKernel(k, true)
		case CUDA:
			r.renderCUDAKernel(k, false)
		case HIP:
			r.renderCUDAKernel(k, true)
		case Kokkos:
			r.renderKokkosKernel(k)
		case SYCLACC:
			r.renderSYCLACCKernel(k)
		case SYCLUSM:
			r.renderSYCLUSMKernel(k)
		case StdPar:
			r.renderStdParKernel(k)
		case TBB:
			r.renderTBBKernel(k)
		}
		r.blank()
	}
	return r.b.String()
}

// --- serial and OpenMP ------------------------------------------------------

func (r *cxxRenderer) renderSerialKernel(k *Kernel, pragma string) {
	r.line("%s {", r.hostSignature(k))
	if k.IsReduction() {
		r.line("\tdouble %s = %s;", k.Red.Var, k.Red.Init)
	}
	if pragma != "" {
		r.line("\t%s", pragma)
	}
	if is2D(k) {
		dj, di := k.Dims[0], k.Dims[1]
		r.line("\tfor (int %s = %s; %s < %s; %s++) {", dj.Var, dj.Lo, dj.Var, dj.Hi, dj.Var)
		r.line("\t\tfor (int %s = %s; %s < %s; %s++) {", di.Var, di.Lo, di.Var, di.Hi, di.Var)
		r.indentBody(k, "\t\t\t", false)
		if k.IsReduction() {
			r.line("\t\t\t%s", accumStmt(k.Red.Var, k.Red.Op, r.redExpr(k, false)))
		}
		r.line("\t\t}")
		r.line("\t}")
	} else {
		d := k.Dims[0]
		r.line("\tfor (int %s = %s; %s < %s; %s++) {", d.Var, d.Lo, d.Var, d.Hi, d.Var)
		r.indentBody(k, "\t\t", false)
		if k.IsReduction() {
			r.line("\t\t%s", accumStmt(k.Red.Var, k.Red.Op, r.redExpr(k, false)))
		}
		r.line("\t}")
	}
	if k.IsReduction() {
		r.line("\treturn %s;", k.Red.Var)
	}
	r.line("}")
}

func (r *cxxRenderer) renderOpenMPKernel(k *Kernel, target bool) {
	var pragma string
	if target {
		pragma = "#pragma omp target teams distribute parallel for"
		if is2D(k) {
			pragma += " collapse(2)"
		}
		var maps []string
		for _, a := range k.Arrays {
			maps = append(maps, a.Name)
		}
		pragma += fmt.Sprintf(" map(tofrom: %s)", strings.Join(maps, ", "))
	} else {
		pragma = "#pragma omp parallel for"
		if is2D(k) {
			pragma += " collapse(2)"
		}
	}
	if k.IsReduction() {
		pragma += " " + ompRedClause(k.Red)
	}
	r.renderSerialKernel(k, pragma)
}

// --- CUDA / HIP ---------------------------------------------------------------

func (r *cxxRenderer) renderCUDAKernel(k *Kernel, hip bool) {
	prefix := "cuda"
	if hip {
		prefix = "hip"
	}
	var kparams []string
	for _, a := range k.Arrays {
		kparams = append(kparams, paramDecl(a, false))
	}
	if k.IsReduction() {
		kparams = append(kparams, "double *partial")
	}
	for _, s := range k.Scalars {
		kparams = append(kparams, paramDecl(s, true))
	}
	r.line("__global__ void %s_kernel(%s) {", k.Name, strings.Join(kparams, ", "))
	if k.IsReduction() {
		r.renderDeviceReductionBody(k)
	} else {
		r.renderDeviceMapBody(k)
	}
	r.line("}")
	r.blank()

	// host wrapper
	r.line("%s {", r.hostSignature(k))
	total := r.totalExtentExpr(k)
	r.line("\tint blocks = ((%s) + TBSIZE - 1) / TBSIZE;", total)
	var args []string
	for _, a := range k.Arrays {
		args = append(args, a.Name)
	}
	if k.IsReduction() {
		args = append(args, "d_partial")
	}
	for _, s := range k.Scalars {
		args = append(args, s.Name)
	}
	if k.IsReduction() {
		r.line("\tif (blocks > NBLOCKS) { blocks = NBLOCKS; }")
	}
	if hip {
		r.line("\thipLaunchKernelGGL(%s_kernel, dim3(blocks), dim3(TBSIZE), 0, 0, %s);",
			k.Name, strings.Join(args, ", "))
		r.line("\thipDeviceSynchronize();")
	} else {
		r.line("\t%s_kernel<<<blocks, TBSIZE>>>(%s);", k.Name, strings.Join(args, ", "))
		r.line("\tcudaDeviceSynchronize();")
	}
	if k.IsReduction() {
		r.line("\tdouble partial[NBLOCKS];")
		r.line("\t%sMemcpy(partial, d_partial, blocks * sizeof(double), %sMemcpyDeviceToHost);",
			prefix, prefix)
		r.line("\tdouble %s = %s;", k.Red.Var, k.Red.Init)
		r.line("\tfor (int blk = 0; blk < blocks; blk++) {")
		r.line("\t\t%s", accumStmt(k.Red.Var, k.Red.Op, "partial[blk]"))
		r.line("\t}")
		r.line("\treturn %s;", k.Red.Var)
	}
	r.line("}")
}

// totalExtentExpr is the flattened iteration count.
func (r *cxxRenderer) totalExtentExpr(k *Kernel) string {
	if is2D(k) {
		jspan, ispan := r.spanExprs(k)
		return fmt.Sprintf("(%s) * (%s)", jspan, ispan)
	}
	d := k.Dims[0]
	return fmt.Sprintf("(%s) - (%s)", d.Hi, d.Lo)
}

// renderDeviceIndexRecovery emits thread-index recovery into the dim vars
// and returns the guard expression.
func (r *cxxRenderer) renderDeviceIndexRecovery(k *Kernel, indent, flatVar string) string {
	if is2D(k) {
		dj, di := k.Dims[0], k.Dims[1]
		jspan, ispan := r.spanExprs(k)
		r.line("%sint ispan = %s;", indent, ispan)
		r.line("%sint %s = (%s) + %s / ispan;", indent, dj.Var, dj.Lo, flatVar)
		r.line("%sint %s = (%s) + %s %% ispan;", indent, di.Var, di.Lo, flatVar)
		return fmt.Sprintf("%s < (%s) * ispan", flatVar, jspan)
	}
	d := k.Dims[0]
	r.line("%sint %s = (%s) + %s;", indent, d.Var, d.Lo, flatVar)
	return fmt.Sprintf("%s < (%s)", d.Var, d.Hi)
}

func (r *cxxRenderer) renderDeviceMapBody(k *Kernel) {
	r.line("\tint gid = blockDim.x * blockIdx.x + threadIdx.x;")
	guard := r.renderDeviceIndexRecovery(k, "\t", "gid")
	r.line("\tif (%s) {", guard)
	r.indentBody(k, "\t\t", false)
	r.line("\t}")
}

// renderDeviceReductionBody emits the canonical grid-stride + shared-memory
// block reduction — the hand-written boilerplate that makes first-party
// offload reductions diverge hard from serial code.
func (r *cxxRenderer) renderDeviceReductionBody(k *Kernel) {
	r.line("\t__shared__ double smem[TBSIZE];")
	r.line("\tint tid = threadIdx.x;")
	r.line("\tint gid = blockDim.x * blockIdx.x + threadIdx.x;")
	r.line("\tint stride = gridDim.x * blockDim.x;")
	r.line("\tdouble acc = %s;", k.Red.Init)
	total := r.totalExtentExpr(k)
	r.line("\tfor (int flat = gid; flat < (%s); flat += stride) {", total)
	if is2D(k) {
		dj, di := k.Dims[0], k.Dims[1]
		_, ispan := r.spanExprs(k)
		r.line("\t\tint ispan = %s;", ispan)
		r.line("\t\tint %s = (%s) + flat / ispan;", dj.Var, dj.Lo)
		r.line("\t\tint %s = (%s) + flat %% ispan;", di.Var, di.Lo)
	} else {
		d := k.Dims[0]
		r.line("\t\tint %s = (%s) + flat;", d.Var, d.Lo)
	}
	r.indentBody(k, "\t\t", false)
	r.line("\t\t%s", accumStmt("acc", k.Red.Op, r.redExpr(k, false)))
	r.line("\t}")
	r.line("\tsmem[tid] = acc;")
	r.line("\t__syncthreads();")
	r.line("\tfor (int off = blockDim.x / 2; off > 0; off /= 2) {")
	r.line("\t\tif (tid < off) {")
	r.line("\t\t\t%s", accumStmt("smem[tid]", k.Red.Op, "smem[tid + off]"))
	r.line("\t\t}")
	r.line("\t\t__syncthreads();")
	r.line("\t}")
	r.line("\tif (tid == 0) {")
	r.line("\t\tpartial[blockIdx.x] = smem[0];")
	r.line("\t}")
}

// --- Kokkos -------------------------------------------------------------------

func (r *cxxRenderer) renderKokkosKernel(k *Kernel) {
	r.line("%s {", r.hostSignature(k))
	if is2D(k) {
		dj, di := k.Dims[0], k.Dims[1]
		policy := fmt.Sprintf("Kokkos::MDRangePolicy<Kokkos::Rank<2> >({%s, %s}, {%s, %s})",
			dj.Lo, di.Lo, dj.Hi, di.Hi)
		if k.IsReduction() {
			r.line("\tdouble %s = %s;", k.Red.Var, k.Red.Init)
			r.line("\tKokkos::parallel_reduce(\"%s\", %s, KOKKOS_LAMBDA(const int %s, const int %s, double &update) {",
				k.Name, policy, dj.Var, di.Var)
			r.indentBody(k, "\t\t", true)
			r.line("\t\t%s", kokkosAccum(k, r.redExpr(k, true)))
			if k.Red.Op == "min" {
				r.line("\t}, Kokkos::Min<double>(%s));", k.Red.Var)
			} else {
				r.line("\t}, %s);", k.Red.Var)
			}
			r.line("\tKokkos::fence();")
			r.line("\treturn %s;", k.Red.Var)
		} else {
			r.line("\tKokkos::parallel_for(\"%s\", %s, KOKKOS_LAMBDA(const int %s, const int %s) {",
				k.Name, policy, dj.Var, di.Var)
			r.indentBody(k, "\t\t", true)
			r.line("\t});")
			r.line("\tKokkos::fence();")
		}
	} else {
		d := k.Dims[0]
		policy := fmt.Sprintf("Kokkos::RangePolicy<>(%s, %s)", d.Lo, d.Hi)
		if k.IsReduction() {
			r.line("\tdouble %s = %s;", k.Red.Var, k.Red.Init)
			r.line("\tKokkos::parallel_reduce(\"%s\", %s, KOKKOS_LAMBDA(const int %s, double &update) {",
				k.Name, policy, d.Var)
			r.indentBody(k, "\t\t", true)
			r.line("\t\t%s", kokkosAccum(k, r.redExpr(k, true)))
			if k.Red.Op == "min" {
				r.line("\t}, Kokkos::Min<double>(%s));", k.Red.Var)
			} else {
				r.line("\t}, %s);", k.Red.Var)
			}
			r.line("\tKokkos::fence();")
			r.line("\treturn %s;", k.Red.Var)
		} else {
			r.line("\tKokkos::parallel_for(\"%s\", %s, KOKKOS_LAMBDA(const int %s) {",
				k.Name, policy, d.Var)
			r.indentBody(k, "\t\t", true)
			r.line("\t});")
			r.line("\tKokkos::fence();")
		}
	}
	r.line("}")
}

func kokkosAccum(k *Kernel, expr string) string {
	if k.Red.Op == "min" {
		return fmt.Sprintf("update = fmin(update, %s);", expr)
	}
	return fmt.Sprintf("update += %s;", expr)
}

// --- SYCL ---------------------------------------------------------------------

func syclCombiner(op string) string {
	if op == "min" {
		return "sycl::minimum<double>()"
	}
	return "sycl::plus<double>()"
}

func syclAccum(k *Kernel, expr string) string {
	if k.Red.Op == "min" {
		return fmt.Sprintf("acc.combine(%s);", expr)
	}
	return fmt.Sprintf("acc += %s;", expr)
}

// renderSYCLRange emits the index recovery from a sycl id.
func (r *cxxRenderer) renderSYCLIndex(k *Kernel, indent string) {
	if is2D(k) {
		dj, di := k.Dims[0], k.Dims[1]
		r.line("%sint %s = (%s) + gid[0];", indent, dj.Var, dj.Lo)
		r.line("%sint %s = (%s) + gid[1];", indent, di.Var, di.Lo)
	} else {
		d := k.Dims[0]
		r.line("%sint %s = (%s) + gid[0];", indent, d.Var, d.Lo)
	}
}

func (r *cxxRenderer) syclRangeExpr(k *Kernel) string {
	if is2D(k) {
		jspan, ispan := r.spanExprs(k)
		return fmt.Sprintf("sycl::range<2>(%s, %s)", jspan, ispan)
	}
	d := k.Dims[0]
	return fmt.Sprintf("sycl::range<1>((%s) - (%s))", d.Hi, d.Lo)
}

func syclIDType(k *Kernel) string {
	if is2D(k) {
		return "sycl::id<2>"
	}
	return "sycl::id<1>"
}

func (r *cxxRenderer) renderSYCLACCKernel(k *Kernel) {
	r.line("%s {", r.hostSignature(k))
	if k.IsReduction() {
		r.line("\tsycl::buffer<double, 1> d_acc_buf(sycl::range<1>(1));")
	}
	r.line("\tq.submit([&](sycl::handler &h) {")
	for _, a := range k.Arrays {
		mode := "read_write"
		if a.Const {
			mode = "read"
		}
		r.line("\t\tauto %s = d_%s.get_access<sycl::access::mode::%s>(h);", a.Name, a.Name, mode)
	}
	if k.IsReduction() {
		r.line("\t\tauto red = sycl::reduction(d_acc_buf, h, %s);", syclCombiner(k.Red.Op))
		r.line("\t\th.parallel_for(%s, red, [=](%s gid, auto &acc) {", r.syclRangeExpr(k), syclIDType(k))
		r.renderSYCLIndex(k, "\t\t\t")
		r.indentBody(k, "\t\t\t", false)
		r.line("\t\t\t%s", syclAccum(k, r.redExpr(k, false)))
		r.line("\t\t});")
	} else {
		r.line("\t\th.parallel_for(%s, [=](%s gid) {", r.syclRangeExpr(k), syclIDType(k))
		r.renderSYCLIndex(k, "\t\t\t")
		r.indentBody(k, "\t\t\t", false)
		r.line("\t\t});")
	}
	r.line("\t});")
	r.line("\tq.wait();")
	if k.IsReduction() {
		r.line("\tsycl::host_accessor result(d_acc_buf);")
		r.line("\treturn result[0];")
	}
	r.line("}")
}

func (r *cxxRenderer) renderSYCLUSMKernel(k *Kernel) {
	r.line("%s {", r.hostSignature(k))
	if k.IsReduction() {
		r.line("\tdouble *d_acc = sycl::malloc_shared<double>(1, q);")
		r.line("\td_acc[0] = %s;", k.Red.Init)
		r.line("\tq.submit([&](sycl::handler &h) {")
		r.line("\t\tauto red = sycl::reduction(d_acc, %s);", syclCombiner(k.Red.Op))
		r.line("\t\th.parallel_for(%s, red, [=](%s gid, auto &acc) {", r.syclRangeExpr(k), syclIDType(k))
		r.renderSYCLIndex(k, "\t\t\t")
		r.indentBody(k, "\t\t\t", false)
		r.line("\t\t\t%s", syclAccum(k, r.redExpr(k, false)))
		r.line("\t\t});")
		r.line("\t});")
		r.line("\tq.wait();")
		r.line("\tdouble %s = d_acc[0];", k.Red.Var)
		r.line("\tsycl::free(d_acc, q);")
		r.line("\treturn %s;", k.Red.Var)
	} else {
		r.line("\tq.parallel_for(%s, [=](%s gid) {", r.syclRangeExpr(k), syclIDType(k))
		r.renderSYCLIndex(k, "\t\t")
		r.indentBody(k, "\t\t", false)
		r.line("\t}).wait();")
	}
	r.line("}")
}

// --- StdPar -------------------------------------------------------------------

func (r *cxxRenderer) renderStdParKernel(k *Kernel) {
	r.line("%s {", r.hostSignature(k))
	total := r.totalExtentExpr(k)
	r.line("\tauto rng = std::views::iota(0, %s);", total)
	if k.IsReduction() {
		combiner := "std::plus<double>()"
		if k.Red.Op == "min" {
			combiner = "[](double x, double y) { return fmin(x, y); }"
		}
		r.line("\tdouble %s = std::transform_reduce(std::execution::par_unseq, rng.begin(), rng.end(), %s, %s, [=](int flat) {",
			k.Red.Var, k.Red.Init, combiner)
		r.renderFlatRecovery(k, "\t\t")
		r.indentBody(k, "\t\t", false)
		r.line("\t\treturn %s;", r.redExpr(k, false))
		r.line("\t});")
		r.line("\treturn %s;", k.Red.Var)
	} else {
		r.line("\tstd::for_each(std::execution::par_unseq, rng.begin(), rng.end(), [=](int flat) {")
		r.renderFlatRecovery(k, "\t\t")
		r.indentBody(k, "\t\t", false)
		r.line("\t});")
	}
	r.line("}")
}

// renderFlatRecovery recovers dim vars from a flat index for iota-based
// models.
func (r *cxxRenderer) renderFlatRecovery(k *Kernel, indent string) {
	if is2D(k) {
		dj, di := k.Dims[0], k.Dims[1]
		_, ispan := r.spanExprs(k)
		r.line("%sint ispan = %s;", indent, ispan)
		r.line("%sint %s = (%s) + flat / ispan;", indent, dj.Var, dj.Lo)
		r.line("%sint %s = (%s) + flat %% ispan;", indent, di.Var, di.Lo)
	} else {
		d := k.Dims[0]
		r.line("%sint %s = (%s) + flat;", indent, d.Var, d.Lo)
	}
}

// --- TBB ----------------------------------------------------------------------

func (r *cxxRenderer) renderTBBKernel(k *Kernel) {
	r.line("%s {", r.hostSignature(k))
	outer := k.Dims[0]
	if k.IsReduction() {
		combine := "[](double x, double y) { return x + y; }"
		if k.Red.Op == "min" {
			combine = "[](double x, double y) { return fmin(x, y); }"
		}
		r.line("\tdouble %s = tbb::parallel_reduce(tbb::blocked_range<int>(%s, %s), %s, [=](const tbb::blocked_range<int> &rng, double acc) {",
			k.Red.Var, outer.Lo, outer.Hi, k.Red.Init)
		r.line("\t\tfor (int %s = rng.begin(); %s < rng.end(); %s++) {", outer.Var, outer.Var, outer.Var)
		if is2D(k) {
			di := k.Dims[1]
			r.line("\t\t\tfor (int %s = %s; %s < %s; %s++) {", di.Var, di.Lo, di.Var, di.Hi, di.Var)
			r.indentBody(k, "\t\t\t\t", false)
			r.line("\t\t\t\t%s", accumStmt("acc", k.Red.Op, r.redExpr(k, false)))
			r.line("\t\t\t}")
		} else {
			r.indentBody(k, "\t\t\t", false)
			r.line("\t\t\t%s", accumStmt("acc", k.Red.Op, r.redExpr(k, false)))
		}
		r.line("\t\t}")
		r.line("\t\treturn acc;")
		r.line("\t}, %s);", combine)
		r.line("\treturn %s;", k.Red.Var)
	} else {
		r.line("\ttbb::parallel_for(tbb::blocked_range<int>(%s, %s), [=](const tbb::blocked_range<int> &rng) {",
			outer.Lo, outer.Hi)
		r.line("\t\tfor (int %s = rng.begin(); %s < rng.end(); %s++) {", outer.Var, outer.Var, outer.Var)
		if is2D(k) {
			di := k.Dims[1]
			r.line("\t\t\tfor (int %s = %s; %s < %s; %s++) {", di.Var, di.Lo, di.Var, di.Hi, di.Var)
			r.indentBody(k, "\t\t\t\t", false)
			r.line("\t\t\t}")
		} else {
			r.indentBody(k, "\t\t\t", false)
		}
		r.line("\t\t}")
		r.line("\t});")
	}
	r.line("}")
}
