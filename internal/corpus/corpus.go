// Package corpus synthesizes the mini-app codebases the evaluation runs on
// (Table II): BabelStream (C++ and Fortran), miniBUDE, TeaLeaf, and
// CloverLeaf, each rendered idiomatically in every programming model the
// paper compares. The real mini-apps are external repositories; the corpus
// reproduces their structure — shared driver code, per-model kernel files,
// model runtime headers — from declarative kernel specifications, so that
// divergence between models comes from exactly the place it comes from in
// the real codebases: how each model's idiom restructures the same kernels.
package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// Model identifies a programming model (including the variants the paper
// treats as distinct: OpenMP vs OpenMP target, SYCL accessors vs USM).
type Model string

// C++ models.
const (
	Serial       Model = "serial"
	OpenMP       Model = "omp"
	OpenMPTarget Model = "omp-target"
	CUDA         Model = "cuda"
	HIP          Model = "hip"
	Kokkos       Model = "kokkos"
	SYCLACC      Model = "sycl-acc"
	SYCLUSM      Model = "sycl-usm"
	StdPar       Model = "std-par"
	TBB          Model = "tbb"
)

// Fortran models.
const (
	FSequential     Model = "f-sequential"
	FArray          Model = "f-array"
	FDoConcurrent   Model = "f-doconcurrent"
	FOpenMP         Model = "f-omp"
	FOpenMPTaskloop Model = "f-omp-taskloop"
	FOpenACC        Model = "f-acc"
	FOpenACCArray   Model = "f-acc-array"
)

// Lang is the implementation language of an app.
type Lang string

// Languages.
const (
	LangCXX     Lang = "c++"
	LangFortran Lang = "fortran"
)

// CXXModels lists the ten C++ models of the evaluation in a stable order.
func CXXModels() []Model {
	return []Model{Serial, OpenMP, OpenMPTarget, CUDA, HIP, Kokkos, SYCLACC, SYCLUSM, StdPar, TBB}
}

// FortranModels lists the seven Fortran BabelStream models.
func FortranModels() []Model {
	return []Model{FSequential, FArray, FDoConcurrent, FOpenMP, FOpenMPTaskloop, FOpenACC, FOpenACCArray}
}

// OffloadModels reports whether a model targets accelerators.
func (m Model) Offload() bool {
	switch m {
	case CUDA, HIP, OpenMPTarget, SYCLACC, SYCLUSM:
		return true
	}
	return false
}

// Param is a kernel parameter.
type Param struct {
	Name  string
	Type  string // scalar type for scalars; element type for arrays
	Const bool   // read-only array
}

// Dim is one parallel loop dimension: for (VAR = LO; VAR < HI; VAR++).
// LO/HI are expressions over the kernel's scalar parameters (C syntax; the
// Fortran renderer uses FLo/FHi when they differ).
type Dim struct {
	Var string
	Lo  string
	Hi  string
}

// Reduction describes a reduction kernel contribution.
type Reduction struct {
	Var  string // result name
	Op   string // "+" or "min"
	Init string // C initial value expression
	Expr string // C expression accumulated per iteration
}

// Kernel is one computational kernel, specified once and rendered into
// every model's idiom.
type Kernel struct {
	Name    string
	Dims    []Dim   // outer parallel dimensions (1 or 2)
	Arrays  []Param // array parameters (element type in Param.Type)
	Scalars []Param // scalar parameters
	// Body holds C statements (using Dim vars, arrays as name[expr],
	// scalars by name). For reductions the body runs before the
	// accumulation.
	Body []string
	// Red is non-nil for reduction kernels.
	Red *Reduction
	// FBody holds the Fortran form (1-based indices, name(expr)).
	FBody []string
	// FArrayForm is the whole-array-syntax form used by the Fortran Array
	// and OpenACC Array variants (empty when the kernel has none).
	FArrayForm []string
	// FRedExpr is the Fortran accumulation expression for reductions.
	FRedExpr string
}

// IsReduction reports whether the kernel reduces to a scalar.
func (k *Kernel) IsReduction() bool { return k.Red != nil }

// App is a mini-app: a named set of kernels plus driver metadata.
type App struct {
	Name    string
	Lang    Lang
	Type    string // runtime characterisation for Table II
	Kernels []Kernel
	// ProblemSizes are the scalar extent parameters shared by the driver
	// (e.g. {"n"} or {"nx", "ny"}).
	ProblemSizes []string
	// DefaultSize is the reduced problem extent used for coverage runs.
	DefaultSize int
	// Iters is the main-loop iteration count.
	Iters int
}

// Unit identifies one translation-unit root within a codebase, tagged with
// the logical role the match function pairs across codebases (Eq. 4/6).
type Unit struct {
	File string
	Role string
}

// Codebase is one generated mini-app × model instance.
type Codebase struct {
	App    string
	Model  Model
	Lang   Lang
	Files  map[string]string // every file, headers included
	Units  []Unit            // translation-unit roots
	System map[string]bool   // true for model/system runtime headers
}

// Source returns a file's content.
func (c *Codebase) Source(name string) string { return c.Files[name] }

// FileNames returns all file names, sorted.
func (c *Codebase) FileNames() []string {
	out := make([]string, 0, len(c.Files))
	for f := range c.Files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Apps returns the full mini-app registry (Table II).
func Apps() []App {
	return []App{
		BabelStream(),
		BabelStreamFortran(),
		MiniBUDE(),
		TeaLeaf(),
		CloverLeaf(),
	}
}

// AppByName looks up an app.
func AppByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("corpus: unknown app %q", name)
}

// ModelsFor lists the models an app is implemented in.
func ModelsFor(app App) []Model {
	if app.Lang == LangFortran {
		return FortranModels()
	}
	return CXXModels()
}

// Generate renders the app in the given model.
func Generate(app App, model Model) (*Codebase, error) {
	valid := false
	for _, m := range ModelsFor(app) {
		if m == model {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("corpus: app %q has no model %q", app.Name, model)
	}
	if app.Lang == LangFortran {
		return generateFortran(app, model)
	}
	return generateCXX(app, model)
}

// GenerateAll renders every model of an app, keyed by model.
func GenerateAll(app App) (map[Model]*Codebase, error) {
	out := map[Model]*Codebase{}
	for _, m := range ModelsFor(app) {
		cb, err := Generate(app, m)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s/%s: %w", app.Name, m, err)
		}
		out[m] = cb
	}
	return out, nil
}

// bracketToParen rewrites C-style subscripts name[expr] into call-style
// name(expr) for the given array names — the Kokkos View (and Fortran)
// access idiom. Nested brackets inside the subscript are handled.
func bracketToParen(stmt string, arrays map[string]bool) string {
	var b strings.Builder
	i := 0
	for i < len(stmt) {
		c := stmt[i]
		if !isWordStart(c) {
			b.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(stmt) && isWordPart(stmt[j]) {
			j++
		}
		word := stmt[i:j]
		b.WriteString(word)
		i = j
		if !arrays[word] || i >= len(stmt) || stmt[i] != '[' {
			continue
		}
		// rewrite the balanced [...] to (...)
		depth := 0
		for i < len(stmt) {
			switch stmt[i] {
			case '[':
				depth++
				if depth == 1 {
					b.WriteByte('(')
				} else {
					b.WriteByte('[')
				}
			case ']':
				depth--
				if depth == 0 {
					b.WriteByte(')')
				} else {
					b.WriteByte(']')
				}
			default:
				b.WriteByte(stmt[i])
			}
			i++
			if depth == 0 {
				break
			}
		}
	}
	return b.String()
}

func isWordStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordPart(c byte) bool { return isWordStart(c) || (c >= '0' && c <= '9') }

// arraySet builds the array-name lookup for a kernel.
func (k *Kernel) arraySet() map[string]bool {
	out := map[string]bool{}
	for _, a := range k.Arrays {
		out[a.Name] = true
	}
	return out
}
