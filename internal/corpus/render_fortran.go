package corpus

import (
	"fmt"
	"strings"
)

// generateFortran renders the Fortran BabelStream port in one of the seven
// model variants of Table II. The codebase mirrors the real port's layout:
// a kernels module and a driver program.
func generateFortran(app App, model Model) (*Codebase, error) {
	r := &fortranRenderer{app: app, model: model}
	files := map[string]string{
		"kernels.f90": r.renderKernels(),
		"main.f90":    r.renderMain(),
	}
	return &Codebase{
		App:   app.Name,
		Model: model,
		Lang:  LangFortran,
		Files: files,
		Units: []Unit{
			{File: "main.f90", Role: "driver"},
			{File: "kernels.f90", Role: "kernels"},
		},
		System: map[string]bool{},
	}, nil
}

type fortranRenderer struct {
	app   App
	model Model
	b     strings.Builder
}

func (r *fortranRenderer) line(format string, args ...any) {
	fmt.Fprintf(&r.b, format, args...)
	r.b.WriteByte('\n')
}

func (r *fortranRenderer) blank() { r.b.WriteByte('\n') }

// usesArraySyntax reports whether the model expresses kernels as
// whole-array statements.
func (r *fortranRenderer) usesArraySyntax() bool {
	return r.model == FArray || r.model == FOpenACCArray
}

func (r *fortranRenderer) renderKernels() string {
	r.b.Reset()
	r.line("! %s kernels — %s model", r.app.Name, r.model)
	r.line("module stream_kernels")
	r.line("  implicit none")
	r.line("contains")
	r.blank()
	for i := range r.app.Kernels {
		k := &r.app.Kernels[i]
		r.renderKernel(k)
		r.blank()
	}
	r.line("end module stream_kernels")
	return r.b.String()
}

// renderKernel renders one kernel as a subroutine (or function for
// reductions).
func (r *fortranRenderer) renderKernel(k *Kernel) {
	var params []string
	for _, a := range k.Arrays {
		params = append(params, a.Name)
	}
	for _, s := range k.Scalars {
		params = append(params, s.Name)
	}
	if k.IsReduction() {
		params = append(params, k.Red.Var)
	}
	r.line("  subroutine %s(%s)", k.Name, strings.Join(params, ", "))
	// declarations
	for _, s := range k.Scalars {
		if s.Type == "int" {
			r.line("    integer, intent(in) :: %s", s.Name)
		} else {
			r.line("    real(8), intent(in) :: %s", s.Name)
		}
	}
	for _, a := range k.Arrays {
		intent := "inout"
		if a.Const {
			intent = "in"
		}
		r.line("    real(8), intent(%s) :: %s(*)", intent, a.Name)
	}
	if k.IsReduction() {
		r.line("    real(8), intent(out) :: %s", k.Red.Var)
	}
	r.line("    integer :: %s", k.Dims[0].Var)
	r.renderKernelLocals(k)
	if k.IsReduction() {
		r.line("    %s = %s", k.Red.Var, fortranLit(k.Red.Init))
	}
	r.renderKernelLoop(k)
	r.line("  end subroutine %s", k.Name)
}

// renderKernelLocals declares scratch variables referenced by the Fortran
// bodies.
func (r *fortranRenderer) renderKernelLocals(k *Kernel) {
	locals := map[string]bool{}
	for _, stmt := range k.FBody {
		for _, v := range fortranLocalNames(stmt) {
			locals[v] = true
		}
	}
	var ints, reals []string
	for v := range locals {
		if v == "idx" || v == "l" || v == "p" {
			ints = append(ints, v)
		} else {
			reals = append(reals, v)
		}
	}
	sortStrings(ints)
	sortStrings(reals)
	if len(ints) > 0 {
		r.line("    integer :: %s", strings.Join(ints, ", "))
	}
	if len(reals) > 0 {
		r.line("    real(8) :: %s", strings.Join(reals, ", "))
	}
}

// fortranLocalNames extracts assigned-to or loop names from a body line.
func fortranLocalNames(stmt string) []string {
	s := strings.TrimSpace(stmt)
	if strings.HasPrefix(s, "do ") {
		// `do l = 1, natlig`
		rest := strings.TrimPrefix(s, "do ")
		if eq := strings.IndexByte(rest, '='); eq > 0 {
			return []string{strings.TrimSpace(rest[:eq])}
		}
		return nil
	}
	if strings.HasPrefix(s, "if") || strings.HasPrefix(s, "else") ||
		strings.HasPrefix(s, "end") {
		return nil
	}
	eq := strings.IndexByte(s, '=')
	if eq <= 0 {
		return nil
	}
	lhs := strings.TrimSpace(s[:eq])
	if strings.ContainsAny(lhs, "(") {
		return nil // array element, not a scalar local
	}
	return []string{lhs}
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func fortranLit(c string) string {
	if strings.Contains(c, ".") {
		return c + "d0"
	}
	return c
}

// renderKernelLoop renders the loop nest in the model's idiom.
func (r *fortranRenderer) renderKernelLoop(k *Kernel) {
	d := k.Dims[0]
	bodyIndent := "      "
	emitBody := func() {
		for _, stmt := range k.FBody {
			r.line("%s%s", bodyIndent, stmt)
		}
		if k.IsReduction() {
			if k.Red.Op == "min" {
				r.line("%s%s = min(%s, %s)", bodyIndent, k.Red.Var, k.Red.Var, k.FRedExpr)
			} else {
				r.line("%s%s = %s + %s", bodyIndent, k.Red.Var, k.Red.Var, k.FRedExpr)
			}
		}
	}
	loopHeader := fmt.Sprintf("do %s = 1, %s", d.Var, d.Hi)

	switch r.model {
	case FSequential:
		r.line("    %s", loopHeader)
		emitBody()
		r.line("    end do")
	case FArray:
		if r.renderArrayForm(k) {
			return
		}
		r.line("    %s", loopHeader)
		emitBody()
		r.line("    end do")
	case FDoConcurrent:
		r.line("    do concurrent (%s = 1:%s)", d.Var, d.Hi)
		emitBody()
		r.line("    end do")
	case FOpenMP:
		dir := "!$omp parallel do"
		if k.IsReduction() {
			dir += fmt.Sprintf(" reduction(%s:%s)", k.Red.Op, k.Red.Var)
		}
		r.line("    %s", dir)
		r.line("    %s", loopHeader)
		emitBody()
		r.line("    end do")
		r.line("    !$omp end parallel do")
	case FOpenMPTaskloop:
		r.line("    !$omp parallel")
		r.line("    !$omp master")
		dir := "!$omp taskloop"
		if k.IsReduction() {
			dir += fmt.Sprintf(" reduction(%s:%s)", k.Red.Op, k.Red.Var)
		}
		r.line("    %s", dir)
		r.line("    %s", loopHeader)
		emitBody()
		r.line("    end do")
		r.line("    !$omp end taskloop")
		r.line("    !$omp end master")
		r.line("    !$omp end parallel")
	case FOpenACC:
		dir := "!$acc parallel loop"
		if k.IsReduction() {
			dir += fmt.Sprintf(" reduction(%s:%s)", k.Red.Op, k.Red.Var)
		}
		r.line("    %s", dir)
		r.line("    %s", loopHeader)
		emitBody()
		r.line("    end do")
		r.line("    !$acc end parallel loop")
	case FOpenACCArray:
		r.line("    !$acc kernels")
		if !r.renderArrayFormBare(k) {
			r.line("    %s", loopHeader)
			emitBody()
			r.line("    end do")
		}
		r.line("    !$acc end kernels")
	}
}

// renderArrayForm emits whole-array statements when the kernel has a form.
func (r *fortranRenderer) renderArrayForm(k *Kernel) bool {
	return r.renderArrayFormBare(k)
}

func (r *fortranRenderer) renderArrayFormBare(k *Kernel) bool {
	if k.IsReduction() {
		// reductions use the array intrinsic form
		r.line("    %s = sum(%s)", k.Red.Var, strings.ReplaceAll(k.FRedExpr, "(i)", ""))
		return true
	}
	if len(k.FArrayForm) == 0 {
		return false
	}
	for _, stmt := range k.FArrayForm {
		r.line("    %s", stmt)
	}
	return true
}

// renderMain renders the driver program.
func (r *fortranRenderer) renderMain() string {
	r.b.Reset()
	app := r.app
	arrays := appArrays(app)
	scalars := appScalars(app)
	r.line("! %s driver — %s model", app.Name, r.model)
	r.line("program stream")
	r.line("  use stream_kernels")
	r.line("  implicit none")
	r.line("  integer, parameter :: n = %d", app.DefaultSize)
	var names []string
	for _, a := range arrays {
		names = append(names, a.Name+"(n)")
	}
	r.line("  real(8) :: %s", strings.Join(names, ", "))
	for _, s := range scalars {
		if s.Type == "int" {
			r.line("  integer :: %s", s.Name)
		} else {
			r.line("  real(8) :: %s", s.Name)
		}
	}
	r.line("  real(8) :: gsum, err, gold_a, gold_b, gold_c")
	r.line("  integer :: i, iter")
	for _, s := range scalars {
		r.line("  %s = %s", s.Name, fortranScalarDefault(s))
	}
	r.line("  do i = 1, n")
	for _, a := range arrays {
		r.line("    %s(i) = %s", a.Name, fortranLit(initValue(app, a.Name)))
	}
	r.line("  end do")
	r.blank()
	r.line("  do iter = 1, %d", app.Iters)
	for i := range app.Kernels {
		k := &app.Kernels[i]
		var args []string
		for _, a := range k.Arrays {
			args = append(args, a.Name)
		}
		for _, s := range k.Scalars {
			args = append(args, s.Name)
		}
		if k.IsReduction() {
			args = append(args, "gsum")
		}
		r.line("    call %s(%s)", k.Name, strings.Join(args, ", "))
	}
	r.line("  end do")
	r.blank()
	r.line("  gold_a = 0.1d0")
	r.line("  gold_b = 0.2d0")
	r.line("  gold_c = 0.0d0")
	r.line("  do iter = 1, %d", app.Iters)
	r.line("    gold_c = gold_a")
	r.line("    gold_b = scalar * gold_c")
	r.line("    gold_c = gold_a + gold_b")
	r.line("    gold_a = gold_b + scalar * gold_c")
	r.line("  end do")
	r.line("  err = 0.0d0")
	r.line("  do i = 1, n")
	r.line("    err = err + abs(a(i) - gold_a) + abs(b(i) - gold_b) + abs(c(i) - gold_c)")
	r.line("  end do")
	r.line("  if (err < 0.0001d0) then")
	r.line("    print *, 'Validation PASSED'")
	r.line("  else")
	r.line("    print *, 'Validation FAILED'")
	r.line("  end if")
	r.line("end program stream")
	return r.b.String()
}

func fortranScalarDefault(p Param) string {
	d := scalarDefault(p)
	if p.Type == "int" {
		return d
	}
	return fortranLit(d)
}
