package corpus

import (
	"strings"
	"testing"

	"silvervale/internal/interp"
	"silvervale/internal/minic"
	"silvervale/internal/minifortran"
)

// providerFor adapts a codebase to the preprocessor's FileProvider.
func providerFor(cb *Codebase) *minic.MapProvider {
	return &minic.MapProvider{Files: cb.Files, System: cb.System}
}

// parseUnitOf preprocesses and parses one unit of a C++ codebase.
func parseUnitOf(t *testing.T, cb *Codebase, file string) *minic.ASTNode {
	t.Helper()
	pp := minic.NewPreprocessor(providerFor(cb), nil)
	res, err := pp.Preprocess(file)
	if err != nil {
		t.Fatalf("%s/%s %s: preprocess: %v", cb.App, cb.Model, file, err)
	}
	unit, err := minic.ParseUnit(res.Text, file)
	if err != nil {
		t.Fatalf("%s/%s %s: parse: %v\n--- preprocessed source ---\n%s",
			cb.App, cb.Model, file, err, numberLines(res.Text))
	}
	minic.ApplyLineOrigins(unit, res.LineOrigin)
	return unit
}

func numberLines(src string) string {
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for i, l := range lines {
		b.WriteString(itoa(i+1) + ": " + l + "\n")
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	if neg {
		return "-" + string(d)
	}
	return string(d)
}

// TestEveryCodebaseParses is the backbone integrity test: every generated
// app × model × unit must preprocess and parse cleanly.
func TestEveryCodebaseParses(t *testing.T) {
	for _, app := range Apps() {
		for _, model := range ModelsFor(app) {
			cb, err := Generate(app, model)
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, model, err)
			}
			for _, u := range cb.Units {
				if cb.Lang == LangFortran {
					if _, err := minifortran.ParseUnit(cb.Source(u.File), u.File); err != nil {
						t.Errorf("%s/%s %s: %v\n%s", app.Name, model, u.File, err,
							numberLines(cb.Source(u.File)))
					}
					continue
				}
				parseUnitOf(t, cb, u.File)
			}
		}
	}
}

func TestRegistryShape(t *testing.T) {
	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("apps = %d, want 5 (Table II)", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name] = true
	}
	for _, want := range []string{"babelstream", "babelstream-fortran", "minibude", "tealeaf", "cloverleaf"} {
		if !names[want] {
			t.Errorf("missing app %q", want)
		}
	}
	if len(CXXModels()) != 10 {
		t.Fatalf("C++ models = %d, want 10", len(CXXModels()))
	}
	if len(FortranModels()) != 7 {
		t.Fatalf("Fortran models = %d, want 7", len(FortranModels()))
	}
}

func TestModelsDiffer(t *testing.T) {
	app, _ := AppByName("babelstream")
	all, err := GenerateAll(app)
	if err != nil {
		t.Fatal(err)
	}
	serial := all[Serial].Source("kernels.cpp")
	for m, cb := range all {
		if m == Serial {
			continue
		}
		var kf string
		for _, u := range cb.Units {
			if u.Role == "kernels" {
				kf = cb.Source(u.File)
			}
		}
		if kf == serial {
			t.Errorf("model %s kernels identical to serial", m)
		}
	}
}

// TestSerialAppsRunAndValidate executes the serial port of every C++ app in
// the interpreter and requires the built-in verification to pass — the
// paper's artefact-evaluation requirement that "each mini-app contains
// built-in verification for correctness".
func TestSerialAppsRunAndValidate(t *testing.T) {
	for _, app := range Apps() {
		if app.Lang != LangCXX {
			continue
		}
		cb, err := Generate(app, Serial)
		if err != nil {
			t.Fatal(err)
		}
		// interpret the combined unit: kernels first, then main
		pp := minic.NewPreprocessor(providerFor(cb), nil)
		combined := "#include \"kernels_src\"\n#include \"main_src\"\n"
		cb.Files["kernels_src"] = cb.Source("kernels.cpp")
		cb.Files["main_src"] = cb.Source("main.cpp")
		cb.Files["combined.cpp"] = combined
		res, err := pp.Preprocess("combined.cpp")
		if err != nil {
			t.Fatalf("%s: preprocess: %v", app.Name, err)
		}
		unit, err := minic.ParseUnit(res.Text, "combined.cpp")
		if err != nil {
			t.Fatalf("%s: parse: %v", app.Name, err)
		}
		minic.ApplyLineOrigins(unit, res.LineOrigin)
		out, err := interp.Run(unit, interp.Options{})
		if err != nil {
			t.Fatalf("%s: run: %v", app.Name, err)
		}
		joined := strings.Join(out.Output, "\n")
		if !strings.Contains(joined, "Validation PASSED") {
			t.Fatalf("%s: verification failed: exit=%v output=%q",
				app.Name, out.Exit, joined)
		}
		if out.Exit.AsInt() != 0 {
			t.Fatalf("%s: nonzero exit %v", app.Name, out.Exit)
		}
	}
}

func TestCoverageRunProducesMask(t *testing.T) {
	app, _ := AppByName("babelstream")
	cb, _ := Generate(app, Serial)
	pp := minic.NewPreprocessor(providerFor(cb), nil)
	cb.Files["combined.cpp"] = "#include \"kernels.cpp\"\n#include \"main.cpp\"\n"
	res, err := pp.Preprocess("combined.cpp")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := minic.ParseUnit(res.Text, "combined.cpp")
	if err != nil {
		t.Fatal(err)
	}
	minic.ApplyLineOrigins(unit, res.LineOrigin)
	out, err := interp.Run(unit, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Coverage.CountLive() == 0 {
		t.Fatal("coverage empty")
	}
	files := out.Coverage.Files()
	foundKernels := false
	for _, f := range files {
		if f == "kernels.cpp" {
			foundKernels = true
		}
	}
	if !foundKernels {
		t.Fatalf("coverage must attribute lines to original files, got %v", files)
	}
}

func TestFortranModelsHaveDirectives(t *testing.T) {
	app, _ := AppByName("babelstream-fortran")
	cases := map[Model]string{
		FOpenMP:         "!$omp parallel do",
		FOpenMPTaskloop: "!$omp taskloop",
		FOpenACC:        "!$acc parallel loop",
		FOpenACCArray:   "!$acc kernels",
		FDoConcurrent:   "do concurrent",
	}
	for model, marker := range cases {
		cb, err := Generate(app, model)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(cb.Source("kernels.f90"), marker) {
			t.Errorf("%s: marker %q missing", model, marker)
		}
	}
	arr, _ := Generate(app, FArray)
	if !strings.Contains(arr.Source("kernels.f90"), "a = b + scalar * c") {
		t.Error("array variant must use whole-array syntax")
	}
}

func TestCUDAUsesLaunchChevrons(t *testing.T) {
	app, _ := AppByName("tealeaf")
	cb, _ := Generate(app, CUDA)
	src := cb.Source("kernels.cu")
	if !strings.Contains(src, "<<<") || !strings.Contains(src, "__global__") {
		t.Fatal("CUDA idiom missing")
	}
	if !strings.Contains(src, "__shared__ double smem") {
		t.Fatal("CUDA block reduction boilerplate missing")
	}
	hip, _ := Generate(app, HIP)
	if !strings.Contains(hip.Source("kernels.hip.cpp"), "hipLaunchKernelGGL") {
		t.Fatal("HIP launch idiom missing")
	}
}

func TestSYCLHeaderIsHeavy(t *testing.T) {
	app, _ := AppByName("babelstream")
	cb, _ := Generate(app, SYCLACC)
	if len(cb.Source("sycl/sycl.hpp")) < 2000 {
		t.Fatal("sycl header suspiciously small")
	}
	if cb.System["sycl/sycl.hpp"] {
		t.Fatal("model headers must not be flagged system")
	}
	if !cb.System["vector"] {
		t.Fatal("std headers must be flagged system")
	}
}

func TestOffloadClassification(t *testing.T) {
	for _, m := range []Model{CUDA, HIP, OpenMPTarget, SYCLACC, SYCLUSM} {
		if !m.Offload() {
			t.Errorf("%s should be offload", m)
		}
	}
	for _, m := range []Model{Serial, OpenMP, Kokkos, StdPar, TBB} {
		if m.Offload() {
			t.Errorf("%s should not be offload", m)
		}
	}
}

func TestBracketToParen(t *testing.T) {
	arrays := map[string]bool{"a": true, "b": true}
	got := bracketToParen("a[i] = b[j * nx + i] + c[i];", arrays)
	want := "a(i) = b(j * nx + i) + c[i];"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	// nested subscripts
	got = bracketToParen("a[b[i]] = 1.0;", arrays)
	if got != "a(b[i]) = 1.0;" && got != "a(b(i)) = 1.0;" {
		t.Fatalf("nested: %q", got)
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := AppByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}
