package corpus

// TeaLeaf is the structured-grid heat-conduction solver (Conjugate
// Gradient method) from the Mantevo suite; the base OpenMP version is part
// of SPEChpc. The kernel balance between shared and model-specific code is
// why Section V.A uses it for the semantic-retention study.
func TeaLeaf() App {
	nx := Param{Name: "nx", Type: "int"}
	ny := Param{Name: "ny", Type: "int"}
	interior := []Dim{
		{Var: "j", Lo: "1", Hi: "ny - 1"},
		{Var: "i", Lo: "1", Hi: "nx - 1"},
	}
	full := []Dim{
		{Var: "j", Lo: "0", Hi: "ny"},
		{Var: "i", Lo: "0", Hi: "nx"},
	}
	idx := "int idx = j * nx + i;"
	fidx := "idx = (j - 1) * nx + i"

	return App{
		Name:         "tealeaf",
		Lang:         LangCXX,
		Type:         "Structured grid",
		ProblemSizes: []string{"nx", "ny"},
		DefaultSize:  8,
		Iters:        2,
		Kernels: []Kernel{
			{
				Name: "tea_init",
				Dims: full,
				Arrays: []Param{
					{Name: "density", Type: "double"},
					{Name: "energy", Type: "double"},
					{Name: "u", Type: "double"},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					idx,
					"density[idx] = 1.0 + 0.01 * (i + j);",
					"energy[idx] = 2.0;",
					"u[idx] = density[idx] * energy[idx];",
				},
				FBody: []string{
					fidx,
					"density(idx) = 1.0d0 + 0.01d0 * (i + j)",
					"energy(idx) = 2.0d0",
					"u(idx) = density(idx) * energy(idx)",
				},
			},
			{
				Name: "cg_init",
				Dims: interior,
				Arrays: []Param{
					{Name: "u", Type: "double", Const: true},
					{Name: "u0", Type: "double"},
					{Name: "r", Type: "double"},
					{Name: "p", Type: "double"},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					idx,
					"u0[idx] = u[idx];",
					"r[idx] = u[idx];",
					"p[idx] = r[idx];",
				},
				FBody: []string{
					fidx,
					"u0(idx) = u(idx)",
					"r(idx) = u(idx)",
					"p(idx) = r(idx)",
				},
			},
			{
				Name: "cg_calc_w",
				Dims: interior,
				Arrays: []Param{
					{Name: "p", Type: "double", Const: true},
					{Name: "w", Type: "double"},
					{Name: "kx", Type: "double", Const: true},
					{Name: "ky", Type: "double", Const: true},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					idx,
					"double smvp = (1.0 + (kx[idx + 1] + kx[idx]) + (ky[idx + nx] + ky[idx])) * p[idx]" +
						" - (kx[idx + 1] * p[idx + 1] + kx[idx] * p[idx - 1])" +
						" - (ky[idx + nx] * p[idx + nx] + ky[idx] * p[idx - nx]);",
					"w[idx] = smvp;",
				},
				Red: &Reduction{Var: "pw", Op: "+", Init: "0.0", Expr: "w[idx] * p[idx]"},
				FBody: []string{
					fidx,
					"smvp = (1.0d0 + (kx(idx + 1) + kx(idx)) + (ky(idx + nx) + ky(idx))) * p(idx)" +
						" - (kx(idx + 1) * p(idx + 1) + kx(idx) * p(idx - 1))" +
						" - (ky(idx + nx) * p(idx + nx) + ky(idx) * p(idx - nx))",
					"w(idx) = smvp",
				},
				FRedExpr: "w(idx) * p(idx)",
			},
			{
				Name: "cg_calc_ur",
				Dims: interior,
				Arrays: []Param{
					{Name: "u", Type: "double"},
					{Name: "r", Type: "double"},
					{Name: "p", Type: "double", Const: true},
					{Name: "w", Type: "double", Const: true},
				},
				Scalars: []Param{{Name: "alpha", Type: "double"}, nx, ny},
				Body: []string{
					idx,
					"u[idx] += alpha * p[idx];",
					"r[idx] -= alpha * w[idx];",
				},
				Red: &Reduction{Var: "rrn", Op: "+", Init: "0.0", Expr: "r[idx] * r[idx]"},
				FBody: []string{
					fidx,
					"u(idx) = u(idx) + alpha * p(idx)",
					"r(idx) = r(idx) - alpha * w(idx)",
				},
				FRedExpr: "r(idx) * r(idx)",
			},
			{
				Name: "cg_calc_p",
				Dims: interior,
				Arrays: []Param{
					{Name: "p", Type: "double"},
					{Name: "r", Type: "double", Const: true},
				},
				Scalars: []Param{{Name: "beta", Type: "double"}, nx, ny},
				Body: []string{
					idx,
					"p[idx] = beta * p[idx] + r[idx];",
				},
				FBody: []string{
					fidx,
					"p(idx) = beta * p(idx) + r(idx)",
				},
			},
			{
				Name: "copy_u",
				Dims: interior,
				Arrays: []Param{
					{Name: "u", Type: "double", Const: true},
					{Name: "u0", Type: "double"},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					idx,
					"u0[idx] = u[idx];",
				},
				FBody: []string{
					fidx,
					"u0(idx) = u(idx)",
				},
			},
			{
				Name: "residual",
				Dims: interior,
				Arrays: []Param{
					{Name: "u", Type: "double", Const: true},
					{Name: "u0", Type: "double", Const: true},
					{Name: "r", Type: "double"},
					{Name: "kx", Type: "double", Const: true},
					{Name: "ky", Type: "double", Const: true},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					idx,
					"double smvp = (1.0 + (kx[idx + 1] + kx[idx]) + (ky[idx + nx] + ky[idx])) * u[idx]" +
						" - (kx[idx + 1] * u[idx + 1] + kx[idx] * u[idx - 1])" +
						" - (ky[idx + nx] * u[idx + nx] + ky[idx] * u[idx - nx]);",
					"r[idx] = u0[idx] - smvp;",
				},
				FBody: []string{
					fidx,
					"smvp = (1.0d0 + (kx(idx + 1) + kx(idx)) + (ky(idx + nx) + ky(idx))) * u(idx)" +
						" - (kx(idx + 1) * u(idx + 1) + kx(idx) * u(idx - 1))" +
						" - (ky(idx + nx) * u(idx + nx) + ky(idx) * u(idx - nx))",
					"r(idx) = u0(idx) - smvp",
				},
			},
			{
				Name: "halo_update_x",
				Dims: []Dim{{Var: "j", Lo: "0", Hi: "ny"}},
				Arrays: []Param{
					{Name: "u", Type: "double"},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					"u[j * nx] = u[j * nx + 1];",
					"u[j * nx + nx - 1] = u[j * nx + nx - 2];",
				},
				FBody: []string{
					"u((j - 1) * nx + 1) = u((j - 1) * nx + 2)",
					"u((j - 1) * nx + nx) = u((j - 1) * nx + nx - 1)",
				},
			},
			{
				Name: "halo_update_y",
				Dims: []Dim{{Var: "i", Lo: "0", Hi: "nx"}},
				Arrays: []Param{
					{Name: "u", Type: "double"},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					"u[i] = u[nx + i];",
					"u[(ny - 1) * nx + i] = u[(ny - 2) * nx + i];",
				},
				FBody: []string{
					"u(i) = u(nx + i)",
					"u((ny - 1) * nx + i) = u((ny - 2) * nx + i)",
				},
			},
			{
				Name: "field_summary",
				Dims: interior,
				Arrays: []Param{
					{Name: "u", Type: "double", Const: true},
					{Name: "density", Type: "double", Const: true},
				},
				Scalars: []Param{nx, ny},
				Body: []string{
					idx,
				},
				Red: &Reduction{Var: "temp", Op: "+", Init: "0.0", Expr: "u[idx] * density[idx]"},
				FBody: []string{
					fidx,
				},
				FRedExpr: "u(idx) * density(idx)",
			},
		},
	}
}
