package sloc

import (
	"strings"
	"testing"
	"testing/quick"
)

const cSample = `// BabelStream-style triad kernel
#include <stdio.h>

/* block
   comment */
void triad(double *a, const double *b, const double *c, double scalar, int n) {
	#pragma omp parallel for
	for (int i = 0; i < n; i++) {
		a[i] = b[i] + scalar * c[i]; // fused multiply-add
	}
}
`

func TestNormalizeCRemovesCommentsKeepsPragmas(t *testing.T) {
	lines := Normalize(cSample, LangC)
	joined := strings.Join(lines, "\n")
	if strings.Contains(joined, "comment") || strings.Contains(joined, "triad kernel") {
		t.Fatalf("comments not removed: %q", joined)
	}
	if !strings.Contains(joined, "#pragma omp parallel for") {
		t.Fatalf("OpenMP pragma must be retained: %q", joined)
	}
	for _, l := range lines {
		if l == "" {
			t.Fatal("blank lines must be removed")
		}
		if strings.Contains(l, "  ") {
			t.Fatalf("whitespace not collapsed: %q", l)
		}
	}
}

func TestSLOCC(t *testing.T) {
	// Lines surviving: #include, void triad..., #pragma, for..., a[i]=...;, }, }
	if got := SLOC(cSample, LangC); got != 7 {
		t.Fatalf("SLOC = %d, want 7", got)
	}
}

func TestLLOCCForHeaderCountsOnce(t *testing.T) {
	src := `for (int i = 0;
	 i < n;
	 i++) { x; }`
	// one for header + one statement
	if got := LLOC(src, LangC); got != 2 {
		t.Fatalf("LLOC = %d, want 2", got)
	}
}

func TestLLOCCSample(t *testing.T) {
	// pragma(1) + for header(1) + assignment(1) = 3
	if got := LLOC(cSample, LangC); got != 3 {
		t.Fatalf("LLOC = %d, want 3", got)
	}
}

func TestLLOCIgnoresSemicolonsInStrings(t *testing.T) {
	src := `printf("a;b;c"); x = ';';`
	if got := LLOC(src, LangC); got != 2 {
		t.Fatalf("LLOC = %d, want 2", got)
	}
}

func TestLLOCLinebreakInsensitive(t *testing.T) {
	a := "x = 1; y = 2; z = 3;"
	b := "x = 1;\ny = 2;\nz = 3;"
	if LLOC(a, LangC) != LLOC(b, LangC) {
		t.Fatal("LLOC must be insensitive to linebreak preference")
	}
	// but SLOC is not — that is the anchoring problem the paper describes
	if SLOC(a, LangC) == SLOC(b, LangC) {
		t.Fatal("SLOC should differ with linebreak preference")
	}
}

const fortranSample = `! plain comment
program stream
  implicit none
  real(8) :: a(1024), b(1024), c(1024)  ! arrays
  integer :: i
  !$omp parallel do
  do i = 1, 1024
    a(i) = b(i) + 0.4 * c(i)
  end do
  !$omp end parallel do
end program stream
`

func TestNormalizeFortranKeepsDirectives(t *testing.T) {
	lines := Normalize(fortranSample, LangFortran)
	joined := strings.Join(lines, "\n")
	if strings.Contains(joined, "plain comment") || strings.Contains(joined, "! arrays") {
		t.Fatalf("comments not removed: %q", joined)
	}
	if !strings.Contains(joined, "!$omp parallel do") {
		t.Fatalf("directive comment must be retained: %q", joined)
	}
	if got := len(lines); got != 10 {
		t.Fatalf("SLOC = %d, want 10 (%q)", got, joined)
	}
}

func TestFortranContinuations(t *testing.T) {
	src := "a = b + &\n    c + &\n    d\nx = 1\n"
	if got := SLOC(src, LangFortran); got != 4 {
		t.Fatalf("SLOC = %d, want 4", got)
	}
	if got := LLOC(src, LangFortran); got != 2 {
		t.Fatalf("LLOC = %d, want 2", got)
	}
}

func TestFortranStringWithBang(t *testing.T) {
	src := "print *, 'hello ! world' ! trailing\n"
	lines := Normalize(src, LangFortran)
	if len(lines) != 1 || !strings.Contains(lines[0], "hello ! world") {
		t.Fatalf("bang inside string mishandled: %v", lines)
	}
	if strings.Contains(lines[0], "trailing") {
		t.Fatalf("trailing comment kept: %v", lines)
	}
}

func TestEmptySources(t *testing.T) {
	for _, lang := range []Lang{LangC, LangFortran} {
		if SLOC("", lang) != 0 || LLOC("", lang) != 0 {
			t.Fatalf("empty source should count zero for lang %v", lang)
		}
	}
}

func TestPropertySLOCBoundedByPhysicalLines(t *testing.T) {
	f := func(s string) bool {
		phys := strings.Count(s, "\n") + 1
		return SLOC(s, LangC) <= phys && SLOC(s, LangFortran) <= phys
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := strings.Join(Normalize(s, LangC), "\n")
		twice := strings.Join(Normalize(once, LangC), "\n")
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
