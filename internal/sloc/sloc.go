// Package sloc implements the SLOC and LLOC codebase summarisation metrics
// (Table I of the paper) following the counting standard of Nguyen et al.
//
// Both metrics are "perceived, language agnostic" absolute measures applied
// after normalisation of whitespace and comments: whitespace normalisation
// removes consecutive whitespace characters while preserving all other
// tokens, and comments are removed. Special provisions are made for
// languages that store semantic-bearing information in unusual places:
// OpenMP pragmas are identified and retained even after normalisation, and
// languages that use special comment tokens for directives (Fortran's
// `!$omp` / `!$acc`) are handled.
package sloc

import (
	"strings"
)

// Lang selects the comment / directive syntax used during normalisation.
type Lang int

const (
	// LangC covers the C-like MiniC dialects (serial, OpenMP, CUDA, HIP,
	// SYCL, Kokkos, TBB, StdPar ports).
	LangC Lang = iota
	// LangFortran covers MiniFortran (fixed semantics, free form).
	LangFortran
)

// Normalize returns the normalised source lines: comments stripped (except
// directive comments), consecutive whitespace collapsed to one space, and
// blank lines removed. SLOC is the length of this slice; the Source metric
// runs its LCS over it.
func Normalize(src string, lang Lang) []string {
	switch lang {
	case LangFortran:
		return normalizeFortran(src)
	default:
		return normalizeC(src)
	}
}

// SLOC returns the source-lines-of-code count of src.
func SLOC(src string, lang Lang) int { return len(Normalize(src, lang)) }

// NormalizeWithLines returns the normalised lines together with their
// 1-based original line numbers, enabling the +coverage variants of the
// perceived metrics (executed-line masks reference original locations).
func NormalizeWithLines(src string, lang Lang) ([]string, []int) {
	var rawLines []string
	switch lang {
	case LangFortran:
		rawLines = strings.Split(src, "\n")
		var out []string
		var nums []int
		for i, line := range rawLines {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" {
				continue
			}
			if strings.HasPrefix(trimmed, "!") && !isDirective(trimmed) {
				continue
			}
			if idx := fortranCommentIndex(trimmed); idx >= 0 {
				trimmed = strings.TrimSpace(trimmed[:idx])
				if trimmed == "" {
					continue
				}
			}
			out = append(out, collapseWhitespace(trimmed))
			nums = append(nums, i+1)
		}
		return out, nums
	default:
		stripped := stripCComments(src)
		var out []string
		var nums []int
		for i, line := range strings.Split(stripped, "\n") {
			n := collapseWhitespace(line)
			if n != "" {
				out = append(out, n)
				nums = append(nums, i+1)
			}
		}
		return out, nums
	}
}

// LLOC returns the logical-lines-of-code count of src. A logical line is a
// statement: in C, a semicolon-terminated statement (the two semicolons
// inside a for-loop header do not count — "a for-loop header in C++ would
// be counted as a single line regardless of linebreak"), each `for` header,
// and each `#pragma` directive. In Fortran, each statement after joining
// `&` continuations, and each `!$` directive.
func LLOC(src string, lang Lang) int {
	switch lang {
	case LangFortran:
		return llocFortran(src)
	default:
		return llocC(src)
	}
}

// --- C-like normalisation -------------------------------------------------

func normalizeC(src string) []string {
	stripped := stripCComments(src)
	var out []string
	for _, line := range strings.Split(stripped, "\n") {
		n := collapseWhitespace(line)
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// stripCComments removes // and /* */ comments while respecting string and
// character literals. Newlines inside block comments are preserved so line
// numbering stays stable.
func stripCComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i < n {
				if src[i] == '*' && i+1 < n && src[i+1] == '/' {
					i += 2
					break
				}
				if src[i] == '\n' {
					b.WriteByte('\n')
				}
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			b.WriteByte(c)
			i++
			for i < n {
				b.WriteByte(src[i])
				if src[i] == '\\' && i+1 < n {
					i++
					b.WriteByte(src[i])
					i++
					continue
				}
				if src[i] == quote {
					i++
					break
				}
				i++
			}
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

func collapseWhitespace(line string) string {
	fields := strings.Fields(line)
	return strings.Join(fields, " ")
}

func llocC(src string) int {
	stripped := stripCComments(src)
	count := 0
	parenDepth := 0
	inForHeader := false
	forHeaderDepth := 0
	i := 0
	n := len(stripped)
	for i < n {
		c := stripped[i]
		switch {
		case c == '"' || c == '\'':
			quote := c
			i++
			for i < n {
				if stripped[i] == '\\' {
					i += 2
					continue
				}
				if stripped[i] == quote {
					i++
					break
				}
				i++
			}
			continue
		case c == '#':
			// preprocessor directive: #pragma counts as a logical line,
			// other directives are configuration and do not.
			j := i
			for j < n && stripped[j] != '\n' {
				j++
			}
			if strings.HasPrefix(strings.TrimSpace(stripped[i:j]), "#pragma") {
				count++
			}
			i = j
			continue
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(stripped[j]) {
				j++
			}
			if stripped[i:j] == "for" {
				count++
				inForHeader = true
				forHeaderDepth = parenDepth
			}
			i = j
			continue
		case c == '(':
			parenDepth++
		case c == ')':
			parenDepth--
			if inForHeader && parenDepth == forHeaderDepth {
				inForHeader = false
			}
		case c == ';':
			if !inForHeader {
				count++
			}
		}
		i++
	}
	return count
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// --- Fortran normalisation -------------------------------------------------

// isDirective reports whether a trimmed Fortran comment is a directive
// comment that must be retained (`!$omp`, `!$acc`, or bare `!$` sentinels).
func isDirective(trimmed string) bool {
	return strings.HasPrefix(strings.ToLower(trimmed), "!$")
}

func normalizeFortran(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "!") && !isDirective(trimmed) {
			continue
		}
		// strip trailing non-directive comment
		if idx := fortranCommentIndex(trimmed); idx >= 0 {
			trimmed = strings.TrimSpace(trimmed[:idx])
			if trimmed == "" {
				continue
			}
		}
		out = append(out, collapseWhitespace(trimmed))
	}
	return out
}

// fortranCommentIndex finds the start of a trailing `!` comment outside
// string literals, returning -1 if none or if the line is itself a
// directive.
func fortranCommentIndex(line string) int {
	if isDirective(line) {
		return -1
	}
	inStr := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '!':
			return i
		}
	}
	return -1
}

func llocFortran(src string) int {
	lines := normalizeFortran(src)
	count := 0
	continuing := false
	for _, l := range lines {
		if !continuing {
			count++
		}
		continuing = strings.HasSuffix(l, "&")
	}
	return count
}
