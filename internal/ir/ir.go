// Package ir implements the platform-independent intermediate
// representation used for the T_ir metric, playing the role LLVM bitcode
// (or Low GIMPLE) plays in the paper.
//
// The IR is an SSA-lite, -O0-style three-address form: every local variable
// gets an alloca; reads are loads and writes are stores; control flow is
// lowered to basic blocks with explicit branches. For offloading models
// (CUDA, HIP, OpenMP target) lowering produces an offload *bundle*: a host
// module plus one device module per target region, with the host side
// carrying the runtime-support driver code (kernel registration, launch
// configuration) that the paper found to pollute T_ir for offload models —
// "the obtained IR contains multiple layers of driver code that is not part
// of the core algorithm".
//
// To keep T_ir comparable, the IR carries no architecture-specific
// information, and — like the frontend trees — symbol names chosen by the
// programmer are discarded when the tree is built, while instruction names,
// functions, basic blocks, globals, and runtime intrinsic names are
// retained.
package ir

import (
	"fmt"
	"strings"

	"silvervale/internal/srcloc"
	"silvervale/internal/tree"
)

// Module is one translation unit's IR for one target.
type Module struct {
	Name    string
	Target  string // "host" or "device"
	Globals []Global
	Funcs   []*Func
}

// Global is a module-level variable.
type Global struct {
	Name string
	Type string
	Pos  srcloc.Pos
}

// Func is a lowered function.
type Func struct {
	Name    string
	Params  []string
	Kernel  bool // device entry point
	Runtime bool // synthesized runtime-support/driver code
	Blocks  []*Block
}

// Block is a basic block.
type Block struct {
	Label  string
	Instrs []Instr
}

// Instr is a three-address instruction. Args reference virtual registers,
// globals, or immediates; only the opcode (and callee name for runtime
// calls) survives into T_ir.
type Instr struct {
	Op     string
	Type   string // operand class: i (integer), f (float), p (pointer), "" (none)
	Callee string // for call ops
	Args   []string
	Dst    string
	Pos    srcloc.Pos
}

// Bundle is the result of lowering one unit: the host module and, for
// offload models, the device modules extracted from the embedded offload
// sections (the in-repo analogue of the Clang offload bundler).
type Bundle struct {
	Host   *Module
	Device []*Module
}

// Modules returns host followed by device modules.
func (b *Bundle) Modules() []*Module {
	out := []*Module{b.Host}
	out = append(out, b.Device...)
	return out
}

// InstrCount returns the total instruction count across the bundle.
func (b *Bundle) InstrCount() int {
	n := 0
	for _, m := range b.Modules() {
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				n += len(blk.Instrs)
			}
		}
	}
	return n
}

// isRetainedName reports whether a callee name is a runtime/intrinsic
// symbol that survives normalisation (it is not programmer-chosen).
func isRetainedName(name string) bool {
	return strings.HasPrefix(name, "__") || strings.HasPrefix(name, "llvm.") ||
		strings.HasPrefix(name, "omp_") || strings.HasPrefix(name, "cuda") ||
		strings.HasPrefix(name, "hip") || strings.HasPrefix(name, "tgt_")
}

// Tree converts the bundle into its T_ir tree. Layout:
//
//	unit:ir
//	  module:<target>
//	    global*            (names discarded)
//	    function | kernel | runtime-function
//	      block
//	        <opcode>[:<type>] leaves, call leaves keep runtime callee names
func (b *Bundle) Tree() *tree.Node {
	root := tree.New("unit:ir")
	for _, m := range b.Modules() {
		root.Add(m.Tree())
	}
	return root
}

// Tree converts a single module to its T_ir subtree.
func (m *Module) Tree() *tree.Node {
	mn := tree.New("module:" + m.Target)
	for _, g := range m.Globals {
		mn.Add(tree.NewAt("global:"+g.Type, g.Pos))
	}
	for _, f := range m.Funcs {
		label := "function"
		switch {
		case f.Kernel:
			label = "kernel"
		case f.Runtime:
			label = "runtime-function"
			if isRetainedName(f.Name) {
				label = "runtime-function:" + f.Name
			}
		}
		fn := tree.New(label)
		for _, blk := range f.Blocks {
			bn := tree.New("block")
			for _, ins := range blk.Instrs {
				lbl := ins.Op
				if ins.Type != "" {
					lbl += ":" + ins.Type
				}
				if ins.Op == "call" && ins.Callee != "" && isRetainedName(ins.Callee) {
					lbl += ":" + ins.Callee
				}
				bn.Add(tree.NewAt(lbl, ins.Pos))
			}
			fn.Add(bn)
		}
		mn.Add(fn)
	}
	return mn
}

// String renders the bundle in a readable LLVM-flavoured listing, used by
// the CLI dump command and tests.
func (b *Bundle) String() string {
	var sb strings.Builder
	for _, m := range b.Modules() {
		fmt.Fprintf(&sb, "; module %s target=%s\n", m.Name, m.Target)
		for _, g := range m.Globals {
			fmt.Fprintf(&sb, "@%s = global %s\n", g.Name, g.Type)
		}
		for _, f := range m.Funcs {
			kind := "define"
			if f.Kernel {
				kind = "define kernel"
			}
			fmt.Fprintf(&sb, "%s @%s(%s) {\n", kind, f.Name, strings.Join(f.Params, ", "))
			for _, blk := range f.Blocks {
				fmt.Fprintf(&sb, "%s:\n", blk.Label)
				for _, ins := range blk.Instrs {
					sb.WriteString("  ")
					if ins.Dst != "" {
						fmt.Fprintf(&sb, "%s = ", ins.Dst)
					}
					sb.WriteString(ins.Op)
					if ins.Callee != "" {
						fmt.Fprintf(&sb, " @%s", ins.Callee)
					}
					if len(ins.Args) > 0 {
						fmt.Fprintf(&sb, " %s", strings.Join(ins.Args, ", "))
					}
					sb.WriteByte('\n')
				}
			}
			sb.WriteString("}\n")
		}
	}
	return sb.String()
}
