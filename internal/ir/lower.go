package ir

import (
	"fmt"
	"strings"

	"silvervale/internal/minic"
	"silvervale/internal/obs"
)

// LowerUnit lowers a parsed MiniC translation unit into an offload bundle.
// Host code goes to the host module; __global__ kernels and OpenMP target
// regions are outlined into a device module, and the host module receives
// the synthesized registration/launch driver code that real offload
// toolchains embed per file.
func LowerUnit(unit *minic.ASTNode, name string) *Bundle {
	return LowerUnitObs(unit, name, nil)
}

// LowerUnitObs is LowerUnit with observability: lowering records an
// "ir.lower" child span under parent and an "ir.units" counter. A nil
// parent is the plain uninstrumented LowerUnit.
func LowerUnitObs(unit *minic.ASTNode, name string, parent *obs.Span) *Bundle {
	sp := parent.Start("ir.lower")
	defer sp.End()
	parent.Recorder().Counter("ir.units").Add(1)
	lw := &lowerer{
		bundle: &Bundle{Host: &Module{Name: name, Target: "host"}},
		unit:   unit,
	}
	lw.gpuPrefix = detectGPUPrefix(unit)
	lw.lowerUnit(unit)
	lw.emitDriverCode()
	return lw.bundle
}

// detectGPUPrefix picks the runtime namespace for driver code from the API
// family the unit calls into.
func detectGPUPrefix(unit *minic.ASTNode) string {
	prefix := "cuda"
	unit.Walk(func(n *minic.ASTNode) bool {
		if n.Kind == minic.KDeclRefExpr && strings.HasPrefix(n.Name, "hip") {
			prefix = "hip"
			return false
		}
		return true
	})
	return prefix
}

type lowerer struct {
	bundle    *Bundle
	unit      *minic.ASTNode
	gpuPrefix string

	fn      *Func  // current function
	blk     *Block // current block
	tmp     int
	blkID   int
	lambdaN int
	offlN   int
	scopes  []map[string]string // name -> type class
	device  *Module
}

// deviceModule lazily creates the single device module of the bundle.
func (lw *lowerer) deviceModule() *Module {
	if lw.device == nil {
		lw.device = &Module{Name: lw.bundle.Host.Name + ".dev", Target: "device"}
		lw.bundle.Device = append(lw.bundle.Device, lw.device)
	}
	return lw.device
}

func (lw *lowerer) lowerUnit(unit *minic.ASTNode) {
	for _, d := range unit.Children {
		lw.lowerTopDecl(d, lw.bundle.Host)
	}
}

func (lw *lowerer) lowerTopDecl(d *minic.ASTNode, mod *Module) {
	switch d.Kind {
	case minic.KNamespaceDecl, minic.KRecordDecl:
		for _, c := range d.Children {
			if c.Kind == minic.KFunctionDecl || c.Kind == minic.KVarDecl ||
				c.Kind == minic.KDeclStmt || c.Kind == minic.KNamespaceDecl ||
				c.Kind == minic.KRecordDecl || c.Kind == minic.KTemplateDecl {
				lw.lowerTopDecl(c, mod)
			}
		}
	case minic.KTemplateDecl:
		for _, c := range d.Children {
			if c.Kind == minic.KFunctionDecl {
				lw.lowerTopDecl(c, mod)
			}
		}
	case minic.KFunctionDecl:
		lw.lowerFunction(d, mod)
	case minic.KDeclStmt:
		for _, v := range d.Children {
			if v.Kind == minic.KVarDecl {
				lw.bundle.Host.Globals = append(lw.bundle.Host.Globals,
					Global{Name: v.Name, Type: typeClassOf(v), Pos: v.Pos})
			}
		}
	case minic.KVarDecl:
		lw.bundle.Host.Globals = append(lw.bundle.Host.Globals,
			Global{Name: d.Name, Type: typeClassOf(d), Pos: d.Pos})
	case minic.KOMPDirective:
		// declarative top-level directives (declare target etc.) carry no
		// code of their own
	}
}

// attrsOf collects attribute names on a declaration.
func attrsOf(d *minic.ASTNode) map[string]bool {
	out := map[string]bool{}
	for _, c := range d.Children {
		if c.Kind == minic.KAttr {
			out[c.Extra] = true
		}
	}
	return out
}

// bodyOf returns the CompoundStmt child.
func bodyOf(d *minic.ASTNode) *minic.ASTNode {
	for _, c := range d.Children {
		if c.Kind == minic.KCompoundStmt {
			return c
		}
	}
	return nil
}

func (lw *lowerer) lowerFunction(d *minic.ASTNode, mod *Module) {
	body := bodyOf(d)
	if body == nil {
		return // prototypes emit nothing
	}
	attrs := attrsOf(d)
	target := mod
	kernel := false
	switch {
	case attrs["CUDAGlobal"]:
		target = lw.deviceModule()
		kernel = true
	case attrs["CUDADevice"]:
		target = lw.deviceModule()
	}
	fn := &Func{Name: d.Name, Kernel: kernel}
	for _, c := range d.Children {
		if c.Kind == minic.KParmVarDecl {
			fn.Params = append(fn.Params, c.Name)
		}
	}
	lw.startFunction(fn, target)
	for _, c := range d.Children {
		if c.Kind == minic.KParmVarDecl {
			lw.declare(c.Name, typeClassOf(c))
			lw.emit(Instr{Op: "alloca", Type: typeClassOf(c), Dst: "%" + c.Name, Pos: c.Pos})
			lw.emit(Instr{Op: "store", Type: typeClassOf(c), Pos: c.Pos})
		}
	}
	if kernel {
		// device entry: thread-id materialisation is part of every kernel
		lw.emit(Instr{Op: "call", Callee: "llvm.workitem.id", Dst: lw.newTmp(), Pos: d.Pos})
	}
	lw.lowerStmt(body)
	lw.emit(Instr{Op: "ret", Pos: d.Pos})
	lw.endFunction()
}

func (lw *lowerer) startFunction(fn *Func, mod *Module) {
	lw.fn = fn
	lw.blkID = 0
	lw.tmp = 0
	lw.scopes = []map[string]string{{}}
	entry := &Block{Label: "entry"}
	fn.Blocks = append(fn.Blocks, entry)
	lw.blk = entry
	mod.Funcs = append(mod.Funcs, fn)
}

func (lw *lowerer) endFunction() {
	lw.fn = nil
	lw.blk = nil
}

func (lw *lowerer) newBlock(hint string) *Block {
	lw.blkID++
	b := &Block{Label: fmt.Sprintf("%s.%d", hint, lw.blkID)}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) setBlock(b *Block) { lw.blk = b }

func (lw *lowerer) newTmp() string {
	lw.tmp++
	return fmt.Sprintf("%%t%d", lw.tmp)
}

func (lw *lowerer) emit(ins Instr) string {
	lw.blk.Instrs = append(lw.blk.Instrs, ins)
	return ins.Dst
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]string{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) declare(name, class string) {
	lw.scopes[len(lw.scopes)-1][name] = class
}

func (lw *lowerer) classOf(name string) string {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if c, ok := lw.scopes[i][name]; ok {
			return c
		}
	}
	return "i"
}

// typeClassOf maps a declaration's type subtree to an operand class.
func typeClassOf(d *minic.ASTNode) string {
	class := "i"
	d.Walk(func(n *minic.ASTNode) bool {
		switch n.Kind {
		case minic.KPointerType, minic.KReferenceType:
			class = "p"
			return false
		case minic.KBuiltinType:
			if n.Extra == "double" || n.Extra == "float" {
				class = "f"
			}
			return false
		case minic.KRecordType, minic.KTemplateSpecType:
			class = "p"
			return false
		case minic.KCompoundStmt:
			return false
		}
		return true
	})
	return class
}

// --- statements -------------------------------------------------------------

func (lw *lowerer) lowerStmt(s *minic.ASTNode) {
	if s == nil {
		return
	}
	switch s.Kind {
	case minic.KCompoundStmt:
		lw.pushScope()
		for _, c := range s.Children {
			lw.lowerStmt(c)
		}
		lw.popScope()
	case minic.KDeclStmt:
		for _, v := range s.Children {
			if v.Kind != minic.KVarDecl {
				continue
			}
			class := typeClassOf(v)
			lw.declare(v.Name, class)
			lw.emit(Instr{Op: "alloca", Type: class, Dst: "%" + v.Name, Pos: v.Pos})
			for _, c := range v.Children {
				if isExprKind(c.Kind) {
					val := lw.lowerExpr(c)
					lw.emit(Instr{Op: "store", Type: class, Args: []string{val, "%" + v.Name}, Pos: v.Pos})
				}
			}
		}
	case minic.KExprStmt:
		for _, c := range s.Children {
			lw.lowerExpr(c)
		}
	case minic.KReturnStmt:
		if len(s.Children) > 0 {
			v := lw.lowerExpr(s.Children[0])
			lw.emit(Instr{Op: "ret", Args: []string{v}, Pos: s.Pos})
		} else {
			lw.emit(Instr{Op: "ret", Pos: s.Pos})
		}
	case minic.KIfStmt:
		cond := lw.lowerExpr(s.Children[0])
		thenB := lw.newBlock("if.then")
		endB := lw.newBlock("if.end")
		elseB := endB
		if len(s.Children) > 2 {
			elseB = lw.newBlock("if.else")
		}
		lw.emit(Instr{Op: "condbr", Args: []string{cond, thenB.Label, elseB.Label}, Pos: s.Pos})
		lw.setBlock(thenB)
		lw.lowerStmt(s.Children[1])
		lw.emit(Instr{Op: "br", Args: []string{endB.Label}, Pos: s.Pos})
		if len(s.Children) > 2 {
			lw.setBlock(elseB)
			lw.lowerStmt(s.Children[2])
			lw.emit(Instr{Op: "br", Args: []string{endB.Label}, Pos: s.Pos})
		}
		lw.setBlock(endB)
	case minic.KForStmt:
		lw.pushScope()
		lw.lowerStmt(s.Children[0]) // init (stmt or null)
		condB := lw.newBlock("for.cond")
		bodyB := lw.newBlock("for.body")
		incB := lw.newBlock("for.inc")
		endB := lw.newBlock("for.end")
		lw.emit(Instr{Op: "br", Args: []string{condB.Label}, Pos: s.Pos})
		lw.setBlock(condB)
		if s.Children[1].Kind != minic.KNullStmt {
			cond := lw.lowerExpr(s.Children[1])
			lw.emit(Instr{Op: "condbr", Args: []string{cond, bodyB.Label, endB.Label}, Pos: s.Pos})
		} else {
			lw.emit(Instr{Op: "br", Args: []string{bodyB.Label}, Pos: s.Pos})
		}
		lw.setBlock(bodyB)
		lw.lowerStmt(s.Children[3])
		lw.emit(Instr{Op: "br", Args: []string{incB.Label}, Pos: s.Pos})
		lw.setBlock(incB)
		if s.Children[2].Kind != minic.KNullStmt {
			lw.lowerExpr(s.Children[2])
		}
		lw.emit(Instr{Op: "br", Args: []string{condB.Label}, Pos: s.Pos})
		lw.setBlock(endB)
		lw.popScope()
	case minic.KWhileStmt:
		condB := lw.newBlock("while.cond")
		bodyB := lw.newBlock("while.body")
		endB := lw.newBlock("while.end")
		lw.emit(Instr{Op: "br", Args: []string{condB.Label}, Pos: s.Pos})
		lw.setBlock(condB)
		cond := lw.lowerExpr(s.Children[0])
		lw.emit(Instr{Op: "condbr", Args: []string{cond, bodyB.Label, endB.Label}, Pos: s.Pos})
		lw.setBlock(bodyB)
		lw.lowerStmt(s.Children[1])
		lw.emit(Instr{Op: "br", Args: []string{condB.Label}, Pos: s.Pos})
		lw.setBlock(endB)
	case minic.KDoStmt:
		bodyB := lw.newBlock("do.body")
		endB := lw.newBlock("do.end")
		lw.emit(Instr{Op: "br", Args: []string{bodyB.Label}, Pos: s.Pos})
		lw.setBlock(bodyB)
		lw.lowerStmt(s.Children[0])
		cond := lw.lowerExpr(s.Children[1])
		lw.emit(Instr{Op: "condbr", Args: []string{cond, bodyB.Label, endB.Label}, Pos: s.Pos})
		lw.setBlock(endB)
	case minic.KBreakStmt:
		lw.emit(Instr{Op: "br", Args: []string{"loop.end"}, Pos: s.Pos})
	case minic.KContinueStmt:
		lw.emit(Instr{Op: "br", Args: []string{"loop.inc"}, Pos: s.Pos})
	case minic.KOMPDirective:
		lw.lowerOMPDirective(s)
	case minic.KNullStmt:
		// nothing
	default:
		if isExprKind(s.Kind) {
			lw.lowerExpr(s)
		}
	}
}

func isExprKind(k string) bool {
	switch k {
	case minic.KBinaryOperator, minic.KUnaryOperator, minic.KConditionalOp,
		minic.KCallExpr, minic.KCUDAKernelCallExpr, minic.KDeclRefExpr,
		minic.KMemberExpr, minic.KArraySubscript, minic.KIntegerLiteral,
		minic.KFloatingLiteral, minic.KStringLiteral, minic.KCharLiteral,
		minic.KBoolLiteral, minic.KNullptrLiteral, minic.KLambdaExpr,
		minic.KInitListExpr, minic.KNewExpr, minic.KDeleteExpr,
		minic.KSizeofExpr, minic.KParenExpr:
		return true
	}
	return false
}

// lowerOMPDirective lowers OpenMP/OpenACC directives the way real
// compilers do: host directives fork through the OpenMP runtime with the
// region outlined into a separate function; target directives outline into
// the device module and the host performs data mapping plus a target-kernel
// launch through libomptarget.
func (lw *lowerer) lowerOMPDirective(d *minic.ASTNode) {
	var body *minic.ASTNode
	var clauses []*minic.ASTNode
	for _, c := range d.Children {
		switch c.Kind {
		case minic.KOMPClause:
			clauses = append(clauses, c)
		case "OMPCapturedRegion":
			// implicit frontend machinery; no code
		default:
			body = c
		}
	}
	isTarget := strings.Contains(d.Extra, "target")
	if body == nil {
		return
	}
	if isTarget {
		lw.offlN++
		name := fmt.Sprintf("__omp_offloading_%d", lw.offlN)
		// data mapping per map-clause argument
		for _, cl := range clauses {
			if cl.Extra == "map" {
				for _, arg := range cl.Children {
					switch arg.Name {
					case "to", "from", "tofrom", "alloc", "release", "delete":
						continue // map-type modifier, not a mapped variable
					}
					lw.emit(Instr{Op: "call", Callee: "__tgt_data_map", Pos: d.Pos})
				}
			}
		}
		lw.emit(Instr{Op: "call", Callee: "__tgt_target_kernel", Args: []string{name}, Pos: d.Pos})
		lw.outline(name, body, lw.deviceModule(), true)
		return
	}
	// host parallel region: outlined function + fork call
	lw.offlN++
	name := fmt.Sprintf("__omp_outlined_%d", lw.offlN)
	for _, cl := range clauses {
		if cl.Extra == "reduction" {
			lw.emit(Instr{Op: "call", Callee: "__kmpc_reduce", Pos: d.Pos})
		}
	}
	switch {
	case strings.Contains(d.Extra, "taskloop"):
		lw.emit(Instr{Op: "call", Callee: "__kmpc_taskloop", Args: []string{name}, Pos: d.Pos})
	case strings.Contains(d.Extra, "simd") && !strings.Contains(d.Extra, "for"):
		// pure simd: loop stays inline with vectorisation metadata
		lw.emit(Instr{Op: "call", Callee: "llvm.loop.vectorize", Pos: d.Pos})
		lw.lowerStmt(body)
		return
	default:
		lw.emit(Instr{Op: "call", Callee: "__kmpc_fork_call", Args: []string{name}, Pos: d.Pos})
	}
	lw.outline(name, body, hostModuleOf(lw), false)
}

func hostModuleOf(lw *lowerer) *Module { return lw.bundle.Host }

// outline lowers a statement into its own function in the given module,
// preserving the current lexical scopes (captured variables behave like
// loads from the closure).
func (lw *lowerer) outline(name string, body *minic.ASTNode, mod *Module, kernel bool) {
	savedFn, savedBlk, savedTmp, savedID := lw.fn, lw.blk, lw.tmp, lw.blkID
	fn := &Func{Name: name, Kernel: kernel, Runtime: !kernel}
	lw.startFunctionPreservingScopes(fn, mod)
	if kernel {
		lw.emit(Instr{Op: "call", Callee: "llvm.workitem.id", Dst: lw.newTmp(), Pos: body.Pos})
	}
	lw.lowerStmt(body)
	lw.emit(Instr{Op: "ret", Pos: body.Pos})
	lw.fn, lw.blk, lw.tmp, lw.blkID = savedFn, savedBlk, savedTmp, savedID
}

func (lw *lowerer) startFunctionPreservingScopes(fn *Func, mod *Module) {
	lw.fn = fn
	entry := &Block{Label: "entry"}
	fn.Blocks = append(fn.Blocks, entry)
	lw.blk = entry
	mod.Funcs = append(mod.Funcs, fn)
}

// --- expressions ------------------------------------------------------------

var binOps = map[string]string{
	"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
	"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
	"&&": "and", "||": "or",
	"==": "cmp.eq", "!=": "cmp.ne", "<": "cmp.lt", ">": "cmp.gt",
	"<=": "cmp.le", ">=": "cmp.ge",
}

var compoundAssign = map[string]string{
	"+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "rem",
	"&=": "and", "|=": "or", "^=": "xor", "<<=": "shl", ">>=": "shr",
}

func (lw *lowerer) lowerExpr(e *minic.ASTNode) string {
	if e == nil {
		return "undef"
	}
	switch e.Kind {
	case minic.KIntegerLiteral, minic.KBoolLiteral, minic.KCharLiteral:
		return e.Extra
	case minic.KFloatingLiteral:
		return e.Extra
	case minic.KStringLiteral:
		return "@.str"
	case minic.KNullptrLiteral:
		return "null"
	case minic.KParenExpr:
		return lw.lowerExpr(e.Children[0])
	case minic.KDeclRefExpr:
		class := lw.classOf(e.Name)
		dst := lw.newTmp()
		lw.emit(Instr{Op: "load", Type: class, Args: []string{"%" + e.Name}, Dst: dst, Pos: e.Pos})
		return dst
	case minic.KBinaryOperator:
		return lw.lowerBinary(e)
	case minic.KUnaryOperator:
		return lw.lowerUnary(e)
	case minic.KConditionalOp:
		cond := lw.lowerExpr(e.Children[0])
		a := lw.lowerExpr(e.Children[1])
		b := lw.lowerExpr(e.Children[2])
		dst := lw.newTmp()
		lw.emit(Instr{Op: "select", Args: []string{cond, a, b}, Dst: dst, Pos: e.Pos})
		return dst
	case minic.KArraySubscript:
		addr := lw.lowerAddress(e)
		dst := lw.newTmp()
		lw.emit(Instr{Op: "load", Type: "f", Args: []string{addr}, Dst: dst, Pos: e.Pos})
		return dst
	case minic.KMemberExpr:
		addr := lw.lowerAddress(e)
		dst := lw.newTmp()
		lw.emit(Instr{Op: "load", Args: []string{addr}, Dst: dst, Pos: e.Pos})
		return dst
	case minic.KCallExpr:
		return lw.lowerCall(e)
	case minic.KCUDAKernelCallExpr:
		return lw.lowerKernelLaunch(e)
	case minic.KLambdaExpr:
		return lw.lowerLambda(e)
	case minic.KNewExpr:
		dst := lw.newTmp()
		lw.emit(Instr{Op: "call", Callee: "llvm.malloc", Dst: dst, Pos: e.Pos})
		return dst
	case minic.KDeleteExpr:
		lw.lowerExpr(e.Children[0])
		lw.emit(Instr{Op: "call", Callee: "llvm.free", Pos: e.Pos})
		return ""
	case minic.KSizeofExpr:
		return "8"
	case minic.KInitListExpr:
		for _, c := range e.Children {
			lw.lowerExpr(c)
		}
		dst := lw.newTmp()
		lw.emit(Instr{Op: "alloca", Type: "p", Dst: dst, Pos: e.Pos})
		return dst
	case minic.KBuiltinType, minic.KRecordType, minic.KTemplateSpecType,
		minic.KConstQual, minic.KPointerType, minic.KAutoType:
		return "" // bare type used as functional cast callee
	default:
		// be permissive: unknown expressions become generic ops
		dst := lw.newTmp()
		lw.emit(Instr{Op: "op", Dst: dst, Pos: e.Pos})
		return dst
	}
}

// lowerAddress computes an address for lvalue expressions.
func (lw *lowerer) lowerAddress(e *minic.ASTNode) string {
	switch e.Kind {
	case minic.KDeclRefExpr:
		return "%" + e.Name
	case minic.KArraySubscript:
		base := lw.lowerExpr(e.Children[0])
		idx := lw.lowerExpr(e.Children[1])
		dst := lw.newTmp()
		lw.emit(Instr{Op: "getelementptr", Args: []string{base, idx}, Dst: dst, Pos: e.Pos})
		return dst
	case minic.KMemberExpr:
		base := lw.lowerExpr(e.Children[0])
		dst := lw.newTmp()
		lw.emit(Instr{Op: "getelementptr", Args: []string{base}, Dst: dst, Pos: e.Pos})
		return dst
	case minic.KParenExpr:
		return lw.lowerAddress(e.Children[0])
	case minic.KUnaryOperator:
		if e.Extra == "*" {
			return lw.lowerExpr(e.Children[0])
		}
	}
	return lw.lowerExpr(e)
}

func (lw *lowerer) lowerBinary(e *minic.ASTNode) string {
	op := e.Extra
	if op == "=" {
		val := lw.lowerExpr(e.Children[1])
		addr := lw.lowerAddress(e.Children[0])
		lw.emit(Instr{Op: "store", Args: []string{val, addr}, Pos: e.Pos})
		return val
	}
	if base, ok := compoundAssign[op]; ok {
		addr := lw.lowerAddress(e.Children[0])
		cur := lw.newTmp()
		lw.emit(Instr{Op: "load", Args: []string{addr}, Dst: cur, Pos: e.Pos})
		val := lw.lowerExpr(e.Children[1])
		dst := lw.newTmp()
		lw.emit(Instr{Op: base, Args: []string{cur, val}, Dst: dst, Pos: e.Pos})
		lw.emit(Instr{Op: "store", Args: []string{dst, addr}, Pos: e.Pos})
		return dst
	}
	a := lw.lowerExpr(e.Children[0])
	b := lw.lowerExpr(e.Children[1])
	dst := lw.newTmp()
	opName := binOps[op]
	if opName == "" {
		opName = "op"
	}
	lw.emit(Instr{Op: opName, Args: []string{a, b}, Dst: dst, Pos: e.Pos})
	return dst
}

func (lw *lowerer) lowerUnary(e *minic.ASTNode) string {
	switch e.Extra {
	case "++", "--", "post++", "post--":
		addr := lw.lowerAddress(e.Children[0])
		cur := lw.newTmp()
		lw.emit(Instr{Op: "load", Args: []string{addr}, Dst: cur, Pos: e.Pos})
		dst := lw.newTmp()
		op := "add"
		if strings.Contains(e.Extra, "--") {
			op = "sub"
		}
		lw.emit(Instr{Op: op, Args: []string{cur, "1"}, Dst: dst, Pos: e.Pos})
		lw.emit(Instr{Op: "store", Args: []string{dst, addr}, Pos: e.Pos})
		return dst
	case "*":
		addr := lw.lowerExpr(e.Children[0])
		dst := lw.newTmp()
		lw.emit(Instr{Op: "load", Args: []string{addr}, Dst: dst, Pos: e.Pos})
		return dst
	case "&":
		return lw.lowerAddress(e.Children[0])
	case "-":
		v := lw.lowerExpr(e.Children[0])
		dst := lw.newTmp()
		lw.emit(Instr{Op: "neg", Args: []string{v}, Dst: dst, Pos: e.Pos})
		return dst
	case "!":
		v := lw.lowerExpr(e.Children[0])
		dst := lw.newTmp()
		lw.emit(Instr{Op: "not", Args: []string{v}, Dst: dst, Pos: e.Pos})
		return dst
	default:
		v := lw.lowerExpr(e.Children[0])
		dst := lw.newTmp()
		lw.emit(Instr{Op: "op", Args: []string{v}, Dst: dst, Pos: e.Pos})
		return dst
	}
}

func (lw *lowerer) lowerCall(e *minic.ASTNode) string {
	callee := ""
	argStart := 1
	if len(e.Children) == 0 {
		return "undef"
	}
	switch c := e.Children[0]; c.Kind {
	case minic.KDeclRefExpr:
		callee = c.Name
	case minic.KMemberExpr:
		// evaluate the receiver, keep the member name as callee
		lw.lowerExpr(c.Children[0])
		callee = c.Name
	default:
		lw.lowerExpr(c)
	}
	for _, arg := range e.Children[argStart:] {
		lw.lowerExpr(arg)
	}
	dst := lw.newTmp()
	name := lastComponent(callee)
	if !isRetainedName(name) {
		name = "" // programmer symbol: discarded
	}
	lw.emit(Instr{Op: "call", Callee: name, Dst: dst, Pos: e.Pos})
	return dst
}

func lastComponent(name string) string {
	if i := strings.LastIndex(name, "::"); i >= 0 {
		return name[i+2:]
	}
	return name
}

// lowerKernelLaunch lowers callee<<<grid, block>>>(args) the way the CUDA
// and HIP toolchains do: push the launch configuration, marshal arguments,
// then call the runtime launch entry point. The kernel itself was already
// lowered into the device module via its __global__ attribute.
func (lw *lowerer) lowerKernelLaunch(e *minic.ASTNode) string {
	for _, c := range e.Children[1:] {
		lw.lowerExpr(c)
	}
	lw.emit(Instr{Op: "call", Callee: "__" + lw.gpuPrefix + "PushCallConfiguration", Pos: e.Pos})
	dst := lw.newTmp()
	lw.emit(Instr{Op: "call", Callee: lw.gpuPrefix + "LaunchKernel", Dst: dst, Pos: e.Pos})
	return dst
}

// lowerLambda outlines a lambda body into its own host function and
// materialises its closure: an alloca plus one store per captured value.
func (lw *lowerer) lowerLambda(e *minic.ASTNode) string {
	lw.lambdaN++
	name := fmt.Sprintf("lambda.%d", lw.lambdaN)
	closure := lw.newTmp()
	lw.emit(Instr{Op: "alloca", Type: "p", Dst: closure, Pos: e.Pos})
	lw.emit(Instr{Op: "store", Type: "p", Args: []string{closure}, Pos: e.Pos})
	var body *minic.ASTNode
	for _, c := range e.Children {
		if c.Kind == minic.KCompoundStmt {
			body = c
		}
		if c.Kind == minic.KParmVarDecl {
			lw.declare(c.Name, typeClassOf(c))
		}
	}
	if body != nil {
		lw.outline(name, body, lw.bundle.Host, false)
	}
	return closure
}

// emitDriverCode appends the per-file runtime-support code offload
// toolchains synthesize: fat-binary registration constructors and
// destructors for CUDA/HIP, and offload-table registration for OpenMP
// target. This code repeats for each file and is what inflates T_ir for
// offload models.
func (lw *lowerer) emitDriverCode() {
	if lw.device == nil {
		return
	}
	host := lw.bundle.Host
	pre := lw.gpuPrefix
	hasKernels := false
	hasOffload := false
	for _, f := range lw.device.Funcs {
		if f.Kernel && strings.HasPrefix(f.Name, "__omp_offloading") {
			hasOffload = true
		} else if f.Kernel {
			hasKernels = true
		}
	}
	if hasKernels {
		ctor := &Func{Name: "__" + pre + "_module_ctor", Runtime: true}
		blk := &Block{Label: "entry"}
		blk.Instrs = append(blk.Instrs, Instr{Op: "call", Callee: "__" + pre + "RegisterFatBinary"})
		for _, f := range lw.device.Funcs {
			if f.Kernel && !strings.HasPrefix(f.Name, "__omp_offloading") {
				blk.Instrs = append(blk.Instrs, Instr{Op: "call", Callee: "__" + pre + "RegisterFunction"})
			}
		}
		blk.Instrs = append(blk.Instrs, Instr{Op: "call", Callee: "__" + pre + "RegisterFatBinaryEnd"})
		blk.Instrs = append(blk.Instrs, Instr{Op: "ret"})
		ctor.Blocks = []*Block{blk}
		dtor := &Func{Name: "__" + pre + "_module_dtor", Runtime: true}
		dtor.Blocks = []*Block{{Label: "entry", Instrs: []Instr{
			{Op: "call", Callee: "__" + pre + "UnregisterFatBinary"},
			{Op: "ret"},
		}}}
		host.Funcs = append(host.Funcs, ctor, dtor)
		host.Globals = append(host.Globals,
			Global{Name: "__" + pre + "_fatbin_wrapper", Type: "p"},
			Global{Name: "__" + pre + "_gpubin_handle", Type: "p"})
	}
	if hasOffload {
		reg := &Func{Name: ".omp_offloading.requires_reg", Runtime: true}
		reg.Blocks = []*Block{{Label: "entry", Instrs: []Instr{
			{Op: "call", Callee: "__tgt_register_requires"},
			{Op: "call", Callee: "__tgt_register_lib"},
			{Op: "ret"},
		}}}
		host.Funcs = append(host.Funcs, reg)
		host.Globals = append(host.Globals,
			Global{Name: ".omp_offloading.entries_begin", Type: "p"},
			Global{Name: ".omp_offloading.entries_end", Type: "p"})
	}
}
