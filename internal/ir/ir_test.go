package ir

import (
	"strings"
	"testing"

	"silvervale/internal/minic"
	"silvervale/internal/ted"
)

func lower(t *testing.T, src string) *Bundle {
	t.Helper()
	unit, err := minic.ParseUnit(src, "test.cpp")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return LowerUnit(unit, "test")
}

func countOp(b *Bundle, op string) int {
	n := 0
	for _, m := range b.Modules() {
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				for _, ins := range blk.Instrs {
					if ins.Op == op {
						n++
					}
				}
			}
		}
	}
	return n
}

func countCallee(b *Bundle, callee string) int {
	n := 0
	for _, m := range b.Modules() {
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				for _, ins := range blk.Instrs {
					if ins.Callee == callee {
						n++
					}
				}
			}
		}
	}
	return n
}

func TestLowerSimpleFunction(t *testing.T) {
	b := lower(t, `
int add(int a, int b) {
	return a + b;
}
`)
	if len(b.Host.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(b.Host.Funcs))
	}
	if countOp(b, "alloca") != 2 {
		t.Fatalf("allocas = %d, want 2 (params)", countOp(b, "alloca"))
	}
	if countOp(b, "add") != 1 {
		t.Fatalf("adds = %d", countOp(b, "add"))
	}
	if countOp(b, "ret") < 1 {
		t.Fatal("no ret")
	}
}

func TestLowerForLoopBlocks(t *testing.T) {
	b := lower(t, `
void fill(double *a, int n) {
	for (int i = 0; i < n; i++) {
		a[i] = 0.5;
	}
}
`)
	fn := b.Host.Funcs[0]
	// entry + cond + body + inc + end
	if len(fn.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(fn.Blocks))
	}
	if countOp(b, "condbr") != 1 {
		t.Fatal("missing conditional branch")
	}
	if countOp(b, "getelementptr") != 1 {
		t.Fatal("missing GEP for subscript store")
	}
}

func TestLowerIfElse(t *testing.T) {
	b := lower(t, `
int sign(int x) {
	if (x > 0) { return 1; } else { return 0 - 1; }
}
`)
	fn := b.Host.Funcs[0]
	if len(fn.Blocks) != 4 { // entry, then, end, else
		t.Fatalf("blocks = %d, want 4", len(fn.Blocks))
	}
}

func TestLowerCUDAKernelSplitsModules(t *testing.T) {
	b := lower(t, `
__global__ void k(double *a, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { a[i] = 1.0; }
}
void run(double *a, int n) {
	k<<<n / 256, 256>>>(a, n);
	cudaDeviceSynchronize();
}
`)
	if len(b.Device) != 1 {
		t.Fatalf("device modules = %d, want 1", len(b.Device))
	}
	var kernel *Func
	for _, f := range b.Device[0].Funcs {
		if f.Kernel {
			kernel = f
		}
	}
	if kernel == nil {
		t.Fatal("kernel not in device module")
	}
	if countCallee(b, "cudaLaunchKernel") != 1 {
		t.Fatal("launch not lowered to runtime call")
	}
	if countCallee(b, "__cudaPushCallConfiguration") != 1 {
		t.Fatal("launch config not lowered")
	}
	// driver code: registration ctor/dtor on the host side
	if countCallee(b, "__cudaRegisterFatBinary") != 1 ||
		countCallee(b, "__cudaRegisterFunction") != 1 {
		t.Fatal("fat binary registration driver code missing")
	}
}

func TestLowerHIPPrefixDetection(t *testing.T) {
	b := lower(t, `
__global__ void k(double *a) { a[0] = 1.0; }
void run(double *a) {
	hipMalloc(a, 8);
	k<<<1, 64>>>(a);
}
`)
	if countCallee(b, "hipLaunchKernel") != 1 {
		t.Fatal("HIP launch not detected")
	}
	if countCallee(b, "__hipRegisterFatBinary") != 1 {
		t.Fatal("HIP registration missing")
	}
}

func TestLowerOpenMPHostFork(t *testing.T) {
	b := lower(t, `
void triad(double *a, double *b, double *c, double s, int n) {
	#pragma omp parallel for
	for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }
}
`)
	if countCallee(b, "__kmpc_fork_call") != 1 {
		t.Fatal("fork call missing")
	}
	// the loop body must live in an outlined runtime function
	outlined := false
	for _, f := range b.Host.Funcs {
		if strings.HasPrefix(f.Name, "__omp_outlined") && f.Runtime {
			outlined = true
		}
	}
	if !outlined {
		t.Fatal("parallel region not outlined")
	}
	if len(b.Device) != 0 {
		t.Fatal("host OpenMP must not create device modules")
	}
}

func TestLowerOpenMPTargetOffload(t *testing.T) {
	b := lower(t, `
void triad(double *a, double *b, double *c, double s, int n) {
	#pragma omp target teams distribute parallel for map(tofrom: a) map(to: b, c)
	for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }
}
`)
	if len(b.Device) != 1 {
		t.Fatal("target region must create a device module")
	}
	if countCallee(b, "__tgt_target_kernel") != 1 {
		t.Fatal("target kernel launch missing")
	}
	if countCallee(b, "__tgt_data_map") != 3 {
		t.Fatalf("data maps = %d, want 3", countCallee(b, "__tgt_data_map"))
	}
	if countCallee(b, "__tgt_register_lib") != 1 {
		t.Fatal("offload registration missing")
	}
}

func TestLowerReductionClause(t *testing.T) {
	b := lower(t, `
double dot(double *a, double *b, int n) {
	double sum = 0.0;
	#pragma omp parallel for reduction(+:sum)
	for (int i = 0; i < n; i++) { sum += a[i] * b[i]; }
	return sum;
}
`)
	if countCallee(b, "__kmpc_reduce") != 1 {
		t.Fatal("reduction runtime call missing")
	}
}

func TestLowerLambdaOutlining(t *testing.T) {
	b := lower(t, `
void apply(double *a, int n) {
	std::for_each(par, begin(0), end(n), [=](int i) {
		a[i] = 2.0;
	});
}
`)
	found := false
	for _, f := range b.Host.Funcs {
		if strings.HasPrefix(f.Name, "lambda.") {
			found = true
		}
	}
	if !found {
		t.Fatal("lambda not outlined")
	}
}

func TestIRTreeNormalisesUserNames(t *testing.T) {
	a := lower(t, "int foo(int x) { return x + 1; }")
	b := lower(t, "int bar(int y) { return y + 1; }")
	ta, tb := a.Tree(), b.Tree()
	if ted.Distance(ta, tb) != 0 {
		t.Fatalf("renamed units must have identical T_ir:\n%s\n%s", ta.Pretty(), tb.Pretty())
	}
}

func TestIRTreeRetainsRuntimeNames(t *testing.T) {
	b := lower(t, `
void f(double *a, int n) {
	#pragma omp parallel for
	for (int i = 0; i < n; i++) { a[i] = 0.0; }
}
`)
	tr := b.Tree()
	s := tr.String()
	if !strings.Contains(s, "__kmpc_fork_call") {
		t.Fatalf("runtime callee name must survive into T_ir: %s", s)
	}
	if !strings.Contains(s, "runtime-function") {
		t.Fatal("outlined runtime function label missing")
	}
}

func TestOffloadDriverInflatesIR(t *testing.T) {
	serial := lower(t, `
void triad(double *a, double *b, double *c, double s, int n) {
	for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }
}
`)
	cuda := lower(t, `
__global__ void triad_k(double *a, const double *b, const double *c, double s, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { a[i] = b[i] + s * c[i]; }
}
void triad(double *a, double *b, double *c, double s, int n) {
	triad_k<<<n / 256, 256>>>(a, b, c, s, n);
	cudaDeviceSynchronize();
}
`)
	if cuda.Tree().Size() <= serial.Tree().Size()+10 {
		t.Fatalf("offload driver code should significantly inflate T_ir: serial=%d cuda=%d",
			serial.Tree().Size(), cuda.Tree().Size())
	}
}

func TestBundleString(t *testing.T) {
	b := lower(t, "int one() { return 1; }")
	s := b.String()
	if !strings.Contains(s, "define @one") || !strings.Contains(s, "entry:") {
		t.Fatalf("listing malformed:\n%s", s)
	}
}

func TestInstrCount(t *testing.T) {
	b := lower(t, "int one() { return 1; }")
	if b.InstrCount() == 0 {
		t.Fatal("instruction count should be positive")
	}
}

func TestCompoundAssignLowering(t *testing.T) {
	b := lower(t, `
void f(int n) {
	int x = 0;
	x += n;
	x *= 2;
}
`)
	if countOp(b, "add") != 1 || countOp(b, "mul") != 1 {
		t.Fatalf("compound assigns: add=%d mul=%d", countOp(b, "add"), countOp(b, "mul"))
	}
	// each compound assign: load, op, store
	if countOp(b, "store") < 4 {
		t.Fatalf("stores = %d", countOp(b, "store"))
	}
}

func TestWhileAndDoLowering(t *testing.T) {
	b := lower(t, `
int f(int n) {
	while (n > 0) { n--; }
	do { n++; } while (n < 10);
	return n;
}
`)
	if countOp(b, "condbr") != 2 {
		t.Fatalf("condbr = %d, want 2", countOp(b, "condbr"))
	}
}
