// Package cluster implements the analysis-side statistics of the paper's
// evaluation: agglomerative hierarchical clustering with complete linkage
// over Euclidean distances between divergence vectors (the dendrograms of
// Fig. 4–6), and classical multidimensional scaling for the 2-D model map
// of Fig. 4.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Node is a dendrogram node: either a leaf (Label set) or an internal merge
// of two subtrees at the given height.
type Node struct {
	Label  string
	Height float64
	Left   *Node
	Right  *Node
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Leaves returns the leaf labels in dendrogram order.
func (n *Node) Leaves() []string {
	if n == nil {
		return nil
	}
	if n.IsLeaf() {
		return []string{n.Label}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// EuclideanFromMatrix converts a (symmetric-ish) divergence matrix into
// point-wise Euclidean distances: each model is represented by its vector
// of divergences against every model, and models whose divergence profiles
// agree land close together. This mirrors "complete linkage and Euclidean
// distance between points".
func EuclideanFromMatrix(m [][]float64) [][]float64 {
	n := len(m)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				d := m[i][k] - m[j][k]
				s += d * d
			}
			v := math.Sqrt(s)
			out[i][j] = v
			out[j][i] = v
		}
	}
	return out
}

// Agglomerate builds a complete-linkage dendrogram from a distance matrix.
// Ties are broken deterministically by smallest index pair.
func Agglomerate(labels []string, dist [][]float64) (*Node, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no items")
	}
	if len(dist) != n {
		return nil, fmt.Errorf("cluster: matrix size %d != labels %d", len(dist), n)
	}
	type clusterT struct {
		node    *Node
		members []int
	}
	clusters := make([]*clusterT, n)
	for i, l := range labels {
		clusters[i] = &clusterT{node: &Node{Label: l}, members: []int{i}}
	}
	completeLink := func(a, b *clusterT) float64 {
		max := 0.0
		for _, i := range a.members {
			for _, j := range b.members {
				if dist[i][j] > max {
					max = dist[i][j]
				}
			}
		}
		return max
	}
	for len(clusters) > 1 {
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := completeLink(clusters[i], clusters[j]); d < best {
					best = d
					bi, bj = i, j
				}
			}
		}
		merged := &clusterT{
			node: &Node{
				Height: best,
				Left:   clusters[bi].node,
				Right:  clusters[bj].node,
			},
			members: append(append([]int{}, clusters[bi].members...), clusters[bj].members...),
		}
		next := make([]*clusterT, 0, len(clusters)-1)
		for k, c := range clusters {
			if k != bi && k != bj {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	return clusters[0].node, nil
}

// CutAt returns the clusters obtained by cutting the dendrogram at the
// given height: every maximal subtree merged strictly below the threshold.
func CutAt(root *Node, height float64) [][]string {
	var out [][]string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() || n.Height <= height {
			out = append(out, n.Leaves())
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	for _, group := range out {
		sort.Strings(group)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Cophenetic returns the merge height at which two labels join — the
// dendrogram distance used by tests to assert "X clusters with Y before Z".
func Cophenetic(root *Node, a, b string) (float64, error) {
	node := lowestCommonAncestor(root, a, b)
	if node == nil {
		return 0, fmt.Errorf("cluster: labels %q/%q not found", a, b)
	}
	return node.Height, nil
}

func lowestCommonAncestor(n *Node, a, b string) *Node {
	if n == nil {
		return nil
	}
	hasA := containsLabel(n, a)
	hasB := containsLabel(n, b)
	if !hasA || !hasB {
		return nil
	}
	if l := lowestCommonAncestor(n.Left, a, b); l != nil {
		return l
	}
	if r := lowestCommonAncestor(n.Right, a, b); r != nil {
		return r
	}
	return n
}

func containsLabel(n *Node, label string) bool {
	if n == nil {
		return false
	}
	if n.IsLeaf() {
		return n.Label == label
	}
	return containsLabel(n.Left, label) || containsLabel(n.Right, label)
}

// PairAgreement quantifies how similarly two dendrograms group the same
// labels: the fraction of label pairs whose *rank* of merge height agrees
// between the trees (both early or both late, relative to the median).
// 1 means the trees tell the same story; ~0.5 is chance level — the
// quantitative form of the paper's "the clustering appears random" reading
// of SLOC/LLOC.
func PairAgreement(a, b *Node, labels []string) (float64, error) {
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	if len(pairs) == 0 {
		return 1, nil
	}
	heights := func(root *Node) ([]float64, error) {
		out := make([]float64, len(pairs))
		for k, p := range pairs {
			h, err := Cophenetic(root, labels[p.i], labels[p.j])
			if err != nil {
				return nil, err
			}
			out[k] = h
		}
		return out, nil
	}
	ha, err := heights(a)
	if err != nil {
		return 0, err
	}
	hb, err := heights(b)
	if err != nil {
		return 0, err
	}
	early := func(hs []float64) []bool {
		sorted := append([]float64{}, hs...)
		sort.Float64s(sorted)
		median := sorted[len(sorted)/2]
		out := make([]bool, len(hs))
		for i, h := range hs {
			out[i] = h < median
		}
		return out
	}
	ea, eb := early(ha), early(hb)
	agree := 0
	for i := range ea {
		if ea[i] == eb[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(pairs)), nil
}

// Render draws the dendrogram as ASCII art, one leaf per line, merge
// heights annotated.
func Render(root *Node) string {
	var b strings.Builder
	var walk func(n *Node, prefix string, tail bool)
	walk = func(n *Node, prefix string, tail bool) {
		connector := "├─"
		childPrefix := prefix + "│ "
		if tail {
			connector = "└─"
			childPrefix = prefix + "  "
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s%s %s\n", prefix, connector, n.Label)
			return
		}
		fmt.Fprintf(&b, "%s%s [h=%.3f]\n", prefix, connector, n.Height)
		walk(n.Left, childPrefix, false)
		walk(n.Right, childPrefix, true)
	}
	if root.IsLeaf() {
		return root.Label + "\n"
	}
	fmt.Fprintf(&b, "[h=%.3f]\n", root.Height)
	walk(root.Left, "", false)
	walk(root.Right, "", true)
	return b.String()
}
