package cluster

import "math"

// MDS computes a classical multidimensional-scaling embedding of a distance
// matrix into dims dimensions (Fig. 4 plots models on a 2-D map before
// wrapping the dendrogram around it). The implementation double-centres the
// squared distances and extracts the top eigenpairs by power iteration with
// deflation — deterministic, no external linear algebra.
func MDS(dist [][]float64, dims int) [][]float64 {
	n := len(dist)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dims)
	}
	if n == 0 || dims == 0 {
		return out
	}
	// B = -1/2 * J * D^2 * J
	d2 := make([][]float64, n)
	rowMean := make([]float64, n)
	total := 0.0
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			v := dist[i][j] * dist[i][j]
			d2[i][j] = v
			rowMean[i] += v
			total += v
		}
		rowMean[i] /= float64(n)
	}
	total /= float64(n * n)
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			b[i][j] = -0.5 * (d2[i][j] - rowMean[i] - rowMean[j] + total)
		}
	}
	for d := 0; d < dims; d++ {
		val, vec := powerIteration(b, d)
		if val <= 0 {
			break // remaining structure is degenerate
		}
		scale := math.Sqrt(val)
		for i := 0; i < n; i++ {
			out[i][d] = vec[i] * scale
		}
		// deflate: B -= val * v v^T
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i][j] -= val * vec[i] * vec[j]
			}
		}
	}
	return out
}

// powerIteration finds the dominant eigenpair of a symmetric matrix with a
// deterministic seed start (varied per component to escape orthogonality).
func powerIteration(m [][]float64, seed int) (float64, []float64) {
	n := len(m)
	v := make([]float64, n)
	for i := range v {
		// deterministic pseudo-random start
		v[i] = math.Sin(float64(i*31+seed*17) + 1.0)
	}
	normalize(v)
	tmp := make([]float64, n)
	lambda := 0.0
	for iter := 0; iter < 500; iter++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += m[i][j] * v[j]
			}
			tmp[i] = s
		}
		newLambda := dot(v, tmp)
		normalize(tmp)
		copy(v, tmp)
		if math.Abs(newLambda-lambda) < 1e-12 {
			lambda = newLambda
			break
		}
		lambda = newLambda
	}
	return lambda, v
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	s = math.Sqrt(s)
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
