package cluster

import (
	"math"
	"strings"
	"testing"
)

// toy distance matrix: two tight pairs {a,b}, {c,d} and an outlier e.
func toyMatrix() ([]string, [][]float64) {
	labels := []string{"a", "b", "c", "d", "e"}
	d := [][]float64{
		{0.0, 0.1, 0.9, 0.8, 2.0},
		{0.1, 0.0, 0.85, 0.9, 2.1},
		{0.9, 0.85, 0.0, 0.15, 2.2},
		{0.8, 0.9, 0.15, 0.0, 2.0},
		{2.0, 2.1, 2.2, 2.0, 0.0},
	}
	return labels, d
}

func TestAgglomeratePairsFirst(t *testing.T) {
	labels, d := toyMatrix()
	root, err := Agglomerate(labels, d)
	if err != nil {
		t.Fatal(err)
	}
	hab, _ := Cophenetic(root, "a", "b")
	hcd, _ := Cophenetic(root, "c", "d")
	hae, _ := Cophenetic(root, "a", "e")
	if hab != 0.1 {
		t.Fatalf("a-b merge height = %v, want 0.1", hab)
	}
	if hcd != 0.15 {
		t.Fatalf("c-d merge height = %v, want 0.15", hcd)
	}
	if hae <= hab || hae <= hcd {
		t.Fatal("outlier must join last")
	}
}

func TestLeavesComplete(t *testing.T) {
	labels, d := toyMatrix()
	root, _ := Agglomerate(labels, d)
	leaves := root.Leaves()
	if len(leaves) != len(labels) {
		t.Fatalf("leaves = %v", leaves)
	}
	seen := map[string]bool{}
	for _, l := range leaves {
		seen[l] = true
	}
	for _, l := range labels {
		if !seen[l] {
			t.Fatalf("missing leaf %q", l)
		}
	}
}

func TestCutAt(t *testing.T) {
	labels, d := toyMatrix()
	root, _ := Agglomerate(labels, d)
	groups := CutAt(root, 0.5)
	// expect {a,b}, {c,d}, {e}
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	joined := map[string]bool{}
	for _, g := range groups {
		joined[strings.Join(g, ",")] = true
	}
	if !joined["a,b"] || !joined["c,d"] || !joined["e"] {
		t.Fatalf("groups = %v", groups)
	}
}

func TestSingleLeaf(t *testing.T) {
	root, err := Agglomerate([]string{"only"}, [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsLeaf() || root.Label != "only" {
		t.Fatalf("root = %+v", root)
	}
	if s := Render(root); !strings.Contains(s, "only") {
		t.Fatalf("render = %q", s)
	}
}

func TestAgglomerateErrors(t *testing.T) {
	if _, err := Agglomerate(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Agglomerate([]string{"a", "b"}, [][]float64{{0}}); err == nil {
		t.Fatal("expected error for size mismatch")
	}
}

func TestCopheneticMissingLabel(t *testing.T) {
	labels, d := toyMatrix()
	root, _ := Agglomerate(labels, d)
	if _, err := Cophenetic(root, "a", "zzz"); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

func TestRenderShowsHeightsAndLeaves(t *testing.T) {
	labels, d := toyMatrix()
	root, _ := Agglomerate(labels, d)
	s := Render(root)
	for _, l := range labels {
		if !strings.Contains(s, l) {
			t.Fatalf("render missing %q:\n%s", l, s)
		}
	}
	if !strings.Contains(s, "[h=") {
		t.Fatalf("render missing heights:\n%s", s)
	}
}

func TestEuclideanFromMatrix(t *testing.T) {
	m := [][]float64{
		{0, 1, 2},
		{1, 0, 2},
		{2, 2, 0},
	}
	d := EuclideanFromMatrix(m)
	if d[0][0] != 0 || d[1][1] != 0 {
		t.Fatal("diagonal must be zero")
	}
	if d[0][1] != d[1][0] {
		t.Fatal("must be symmetric")
	}
	// rows 0 and 1 have nearly identical profiles; row 2 differs
	if d[0][1] >= d[0][2] {
		t.Fatalf("similar profiles should be close: d01=%v d02=%v", d[0][1], d[0][2])
	}
}

func TestMDSRecoversLineGeometry(t *testing.T) {
	// four collinear points at 0, 1, 2, 6
	pos := []float64{0, 1, 2, 6}
	n := len(pos)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(pos[i] - pos[j])
		}
	}
	emb := MDS(d, 2)
	// pairwise embedded distances must approximate the originals
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dx := emb[i][0] - emb[j][0]
			dy := emb[i][1] - emb[j][1]
			got := math.Sqrt(dx*dx + dy*dy)
			if math.Abs(got-d[i][j]) > 0.05*(d[i][j]+1) {
				t.Fatalf("embedded d(%d,%d) = %v, want %v", i, j, got, d[i][j])
			}
		}
	}
}

func TestMDSDeterministic(t *testing.T) {
	_, d := toyMatrix()
	a := MDS(d, 2)
	b := MDS(d, 2)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("MDS must be deterministic")
			}
		}
	}
}

func TestMDSEmpty(t *testing.T) {
	out := MDS(nil, 2)
	if len(out) != 0 {
		t.Fatal("empty input should produce empty embedding")
	}
}
