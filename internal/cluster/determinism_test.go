package cluster

// Regression tests for reproducibility: the dendrogram pipeline sits
// downstream of the (now parallel) divergence engine, so its own outputs
// must be pure functions of the input matrix — identical renders across
// repeated runs, no dependence on map iteration or scheduling. These
// pin the determinism guarantee stated in DESIGN.md §Concurrency.

import (
	"math/rand"
	"testing"
)

func randDivergenceMatrix(r *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := r.Float64()
			m[i][j] = v
			m[j][i] = v * (0.8 + 0.4*r.Float64()) // asymmetric, like real TBMD
		}
	}
	return m
}

func TestAgglomerateReproducible(t *testing.T) {
	labels := []string{"serial", "omp", "cuda", "hip", "kokkos", "sycl", "tbb"}
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		m := randDivergenceMatrix(r, len(labels))
		dist := EuclideanFromMatrix(m)
		first, err := Agglomerate(labels, dist)
		if err != nil {
			t.Fatal(err)
		}
		want := Render(first)
		for run := 0; run < 5; run++ {
			root, err := Agglomerate(labels, EuclideanFromMatrix(m))
			if err != nil {
				t.Fatal(err)
			}
			if got := Render(root); got != want {
				t.Fatalf("trial %d run %d: dendrogram differs\nwant:\n%s\ngot:\n%s",
					trial, run, want, got)
			}
		}
	}
}

func TestCutAtOrderingStable(t *testing.T) {
	labels := []string{"e", "a", "c", "b", "d"}
	r := rand.New(rand.NewSource(22))
	m := randDivergenceMatrix(r, len(labels))
	root, err := Agglomerate(labels, EuclideanFromMatrix(m))
	if err != nil {
		t.Fatal(err)
	}
	want := CutAt(root, 0.5)
	for run := 0; run < 5; run++ {
		got := CutAt(root, 0.5)
		if len(got) != len(want) {
			t.Fatalf("cut size changed: %v vs %v", got, want)
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("group %d changed: %v vs %v", i, got, want)
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("group %d changed: %v vs %v", i, got, want)
				}
			}
		}
	}
}

func TestPairAgreementReproducible(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e", "f"}
	r := rand.New(rand.NewSource(23))
	ma := randDivergenceMatrix(r, len(labels))
	mb := randDivergenceMatrix(r, len(labels))
	ra, err := Agglomerate(labels, EuclideanFromMatrix(ma))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Agglomerate(labels, EuclideanFromMatrix(mb))
	if err != nil {
		t.Fatal(err)
	}
	want, err := PairAgreement(ra, rb, labels)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		got, err := PairAgreement(ra, rb, labels)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("agreement drifted: %v vs %v", got, want)
		}
	}
}
