package cluster

import "testing"

func TestPairAgreementIdenticalTrees(t *testing.T) {
	labels, d := toyMatrix()
	a, _ := Agglomerate(labels, d)
	b, _ := Agglomerate(labels, d)
	agr, err := PairAgreement(a, b, labels)
	if err != nil {
		t.Fatal(err)
	}
	if agr != 1 {
		t.Fatalf("identical dendrograms must agree fully, got %v", agr)
	}
}

func TestPairAgreementScrambledTree(t *testing.T) {
	labels, d := toyMatrix()
	a, _ := Agglomerate(labels, d)
	// a distance matrix pairing a-with-c and b-with-d instead
	scrambled := [][]float64{
		{0.0, 2.0, 0.1, 0.9, 1.9},
		{2.0, 0.0, 0.9, 0.1, 2.1},
		{0.1, 0.9, 0.0, 2.0, 2.2},
		{0.9, 0.1, 2.0, 0.0, 2.0},
		{1.9, 2.1, 2.2, 2.0, 0.0},
	}
	b, _ := Agglomerate(labels, scrambled)
	agr, err := PairAgreement(a, b, labels)
	if err != nil {
		t.Fatal(err)
	}
	if agr >= 1 {
		t.Fatalf("conflicting dendrograms should not agree fully, got %v", agr)
	}
}

func TestPairAgreementErrors(t *testing.T) {
	labels, d := toyMatrix()
	a, _ := Agglomerate(labels, d)
	if _, err := PairAgreement(a, a, []string{"a", "zzz"}); err == nil {
		t.Fatal("expected error for unknown label")
	}
	if agr, err := PairAgreement(a, a, []string{"a"}); err != nil || agr != 1 {
		t.Fatalf("single label: %v %v", agr, err)
	}
}
