package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmap(t *testing.T) {
	s := Heatmap(
		[]string{"tsem", "tsrc"},
		[]string{"omp", "cuda"},
		[][]float64{{0.05, 0.61}, {0.04, 0.60}},
	)
	for _, want := range []string{"tsem", "tsrc", "omp", "cuda", "0.61", "0.05"} {
		if !strings.Contains(s, want) {
			t.Fatalf("heatmap missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("heatmap lines = %d", len(lines))
	}
}

func TestHeatmapClampsAndNaN(t *testing.T) {
	s := Heatmap([]string{"r"}, []string{"a", "b", "c"},
		[][]float64{{-0.5, 1.7, math.NaN()}})
	if !strings.Contains(s, "?") {
		t.Fatalf("NaN glyph missing:\n%s", s)
	}
}

func TestBar(t *testing.T) {
	s := Bar([]string{"omp", "cuda"}, []float64{0.1, 0.9}, 20)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar lines = %d", len(lines))
	}
	if strings.Count(lines[1], "█") <= strings.Count(lines[0], "█") {
		t.Fatalf("bar lengths not proportional:\n%s", s)
	}
	// zero max must not panic
	_ = Bar([]string{"x"}, []float64{0}, 10)
}

func TestCascade(t *testing.T) {
	s := Cascade(
		[]string{"kokkos", "cuda"},
		[][]float64{{0.9, 0.8, 0.7}, {1.0, 0, 0}},
		[]float64{0.79, 0},
	)
	if !strings.Contains(s, "best-1") || !strings.Contains(s, "kokkos") {
		t.Fatalf("cascade malformed:\n%s", s)
	}
	if !strings.Contains(s, "-") { // unsupported cells render as dashes
		t.Fatalf("unsupported marker missing:\n%s", s)
	}
}

func TestScatter(t *testing.T) {
	s := Scatter([]ScatterPoint{
		{X: 0, Y: 0, Glyph: '*', Label: "serial"},
		{X: 1, Y: 1, Glyph: 'o', Label: "kokkos"},
	}, 40, 10, "divergence", "phi")
	if !strings.Contains(s, "serial") || !strings.Contains(s, "kokkos") {
		t.Fatalf("labels missing:\n%s", s)
	}
	if !strings.Contains(s, "divergence") || !strings.Contains(s, "phi") {
		t.Fatalf("axis labels missing:\n%s", s)
	}
}

func TestScatterDegenerate(t *testing.T) {
	// identical points and empty input must not panic or divide by zero
	_ = Scatter(nil, 10, 5, "x", "y")
	_ = Scatter([]ScatterPoint{{X: 1, Y: 1, Glyph: '*'}}, 10, 5, "x", "y")
}

func TestTable(t *testing.T) {
	s := Table([]string{"Metric", "Measure"}, [][]string{
		{"SLOC", "Absolute"},
		{"T_sem", "Relative (TED)"},
	})
	if !strings.Contains(s, "Metric") || !strings.Contains(s, "T_sem") {
		t.Fatalf("table malformed:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
}
