// Package textplot renders the evaluation's visual artefacts as terminal
// text: divergence heatmaps (Fig. 7/8), cascade plots (Fig. 11/12),
// navigation charts (Fig. 13–15), and bar charts. Dendrograms are rendered
// by package cluster.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// shades maps a value in [0, 1] to a density glyph.
var shades = []rune{' ', '░', '▒', '▓', '█'}

func shade(v float64) rune {
	if math.IsNaN(v) {
		return '?'
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	idx := int(v * float64(len(shades)-1))
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// Heatmap renders a labelled matrix of values in [0, 1] with both glyph
// shading and the numeric value per cell.
func Heatmap(rowLabels, colLabels []string, m [][]float64) string {
	var b strings.Builder
	colw := 11
	b.WriteString(pad("", 14))
	for _, c := range colLabels {
		b.WriteString(pad(truncate(c, colw-1), colw))
	}
	b.WriteByte('\n')
	for i, r := range rowLabels {
		b.WriteString(pad(truncate(r, 13), 14))
		for j := range colLabels {
			v := m[i][j]
			cell := fmt.Sprintf("%c %.2f", shade(v), v)
			b.WriteString(pad(cell, colw))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bar renders a horizontal bar chart of label -> value pairs scaled to the
// maximum value.
func Bar(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if max > 0 {
			n = int(values[i] / max * float64(width))
		}
		fmt.Fprintf(&b, "%-14s %s %.3f\n", truncate(l, 14), strings.Repeat("█", n), values[i])
	}
	return b.String()
}

// Cascade renders a cascade plot: one line per model, efficiencies across
// the best-k platforms, ending in the model's Φ.
func Cascade(models []string, series [][]float64, phis []float64) string {
	var b strings.Builder
	b.WriteString(pad("model", 14))
	for k := range series[0] {
		b.WriteString(pad(fmt.Sprintf("best-%d", k+1), 9))
	}
	b.WriteString("phi\n")
	for i, m := range models {
		b.WriteString(pad(truncate(m, 13), 14))
		for _, e := range series[i] {
			if e <= 0 {
				b.WriteString(pad("-", 9))
			} else {
				b.WriteString(pad(fmt.Sprintf("%c %.2f", shade(e), e), 9))
			}
		}
		fmt.Fprintf(&b, "%.3f\n", phis[i])
	}
	return b.String()
}

// Scatter renders points on a width×height canvas with axis ranges derived
// from the data. Labels are drawn beside their marker when space allows.
type ScatterPoint struct {
	X, Y  float64
	Glyph rune
	Label string
}

// Scatter renders a scatter chart. X grows rightwards, Y upwards.
func Scatter(points []ScatterPoint, width, height int, xlabel, ylabel string) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if len(points) == 0 || minX == maxX {
		minX, maxX = 0, 1
	}
	if minY == maxY {
		minY, maxY = 0, 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	place := func(p ScatterPoint) {
		x := int((p.X - minX) / (maxX - minX) * float64(width-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - y
		grid[row][x] = p.Glyph
		start := x + 2
		if start+len(p.Label) > width { // no room right of the marker: go left
			start = x - 2 - len(p.Label)
		}
		for k, r := range p.Label {
			cx := start + k
			if cx < 0 || cx >= width {
				continue
			}
			if grid[row][cx] == ' ' {
				grid[row][cx] = r
			}
		}
	}
	for _, p := range points {
		place(p)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: %.2f..%.2f)\n", ylabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " %s (x: %.2f..%.2f)\n", xlabel, minX, maxX)
	return b.String()
}

// Table renders rows of cells with padded columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for i, h := range header {
		b.WriteString(pad(h, widths[i]+2))
	}
	b.WriteByte('\n')
	for i := range header {
		b.WriteString(pad(strings.Repeat("-", widths[i]), widths[i]+2))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) {
				b.WriteString(pad(c, widths[i]+2))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func truncate(s string, w int) string {
	if len(s) <= w {
		return s
	}
	return s[:w]
}
