// Bench trajectory emitter (PR 10): warm request latency through the
// serve daemon's HTTP path vs the direct engine path, on the TeaLeaf
// corpus:
//
//  1. cold HTTP request: first /v1/matrix sweep against a fresh daemon
//     (indexes every port, fills the cell memo) — context only;
//  2. direct warm leg: the one-shot CLI path — warm engine sweep plus
//     the shared JSON payload rendering (`matrix -json`'s work) — per
//     repetition latencies give p50/p99;
//  3. HTTP warm leg: the same request through the full daemon stack
//     (mux, accounting, admission, request obs, codec) via in-process
//     ServeHTTP — no TCP, so the delta is the serving layer itself, not
//     kernel socket jitter;
//  4. engine-only warm leg (no JSON rendering), recorded for context.
//
// Hard asserts: the HTTP response is byte-identical to the direct
// rendering, and warm HTTP p50 stays under 2x the direct warm p50 — the
// serving layer must not double the cost of the work it wraps.
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR10.json \
//	  go test -run '^$' -bench '^BenchmarkPR10Trajectory$' -timeout 30m .
package silvervale

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"silvervale/internal/core"
	"silvervale/internal/experiments"
	"silvervale/internal/serve"
)

type pr10Trajectory struct {
	PR        int    `json:"pr"`
	GoVersion string `json:"go"`
	NumCPU    int    `json:"num_cpu"`

	App   string `json:"app"`
	Ports int    `json:"ports"`
	Cells int    `json:"cells"`

	ColdHTTPNs int64 `json:"cold_http_ns"`

	EngineOnlyP50Ns int64 `json:"engine_only_p50_ns"`
	EngineOnlyP99Ns int64 `json:"engine_only_p99_ns"`
	DirectP50Ns     int64 `json:"direct_p50_ns"`
	DirectP99Ns     int64 `json:"direct_p99_ns"`
	HTTPP50Ns       int64 `json:"http_p50_ns"`
	HTTPP99Ns       int64 `json:"http_p99_ns"`

	HTTPOverheadRatioP50 float64 `json:"http_overhead_ratio_p50"`
	OverheadUnder2x      bool    `json:"overhead_under_2x"`
	ByteIdenticalToCLI   bool    `json:"byte_identical_to_cli"`

	Requests int64 `json:"requests_served"`

	Benchmarks []benchTiming `json:"benchmarks"`
}

// benchPctile returns the p-th percentile latency in nanoseconds
// (nearest-rank on a sorted copy).
func benchPctile(lat []time.Duration, p float64) int64 {
	s := append([]time.Duration{}, lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx].Nanoseconds()
}

func BenchmarkPR10Trajectory(b *testing.B) {
	out := benchJSONPath(b)
	const (
		appName = "tealeaf"
		metric  = core.MetricTsem
		reqs    = 200 // per-leg warm repetitions; enough for a stable p99
	)

	env := experiments.NewEnvWorkers(1)
	srv := serve.New(serve.Config{Env: env, MaxInflight: 2, MaxQueue: 8})
	body := `{"app":"` + appName + `","metric":"` + metric + `"}`
	httpOnce := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/matrix", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("matrix request failed: %d %s", w.Code, w.Body)
		}
		return w
	}

	// 1. Cold: the first request pays the full frontend + matrix sweep.
	coldStart := time.Now()
	first := httpOnce()
	coldNs := time.Since(coldStart).Nanoseconds()

	// The direct rendering the HTTP body must match byte for byte.
	m, order, err := env.Matrix(appName, metric)
	if err != nil {
		b.Fatal(err)
	}
	idxs, _, err := env.Indexes(appName)
	if err != nil {
		b.Fatal(err)
	}
	var direct bytes.Buffer
	if err := serve.BuildMatrixPayload(appName, metric, order, m, idxs).WriteJSON(&direct); err != nil {
		b.Fatal(err)
	}
	identical := bytes.Equal(first.Body.Bytes(), direct.Bytes())
	if !identical {
		b.Fatalf("HTTP matrix response differs from the direct CLI rendering")
	}

	// 4. Engine-only warm leg: the memoised sweep with no rendering.
	engineLat := make([]time.Duration, reqs)
	engineLeg := benchMeasure("WarmEngineOnly", reqs, func(rep int) {
		t0 := time.Now()
		if _, _, err := env.Matrix(appName, metric); err != nil {
			b.Fatal(err)
		}
		engineLat[rep] = time.Since(t0)
	})

	// 2. Direct warm leg: warm sweep + the shared JSON codec — exactly
	// the work `matrix -json` repeats on a warm store.
	directLat := make([]time.Duration, reqs)
	directLeg := benchMeasure("WarmDirectRender", reqs, func(rep int) {
		t0 := time.Now()
		m, order, err := env.Matrix(appName, metric)
		if err != nil {
			b.Fatal(err)
		}
		idxs, _, err := env.Indexes(appName)
		if err != nil {
			b.Fatal(err)
		}
		if err := serve.BuildMatrixPayload(appName, metric, order, m, idxs).WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
		directLat[rep] = time.Since(t0)
	})

	// 3. HTTP warm leg: the same request through the daemon stack.
	httpLat := make([]time.Duration, reqs)
	httpLeg := benchMeasure("WarmHTTPRequest", reqs, func(rep int) {
		t0 := time.Now()
		httpOnce()
		httpLat[rep] = time.Since(t0)
	})

	httpP50 := benchPctile(httpLat, 50)
	directP50 := benchPctile(directLat, 50)
	ratio := float64(httpP50) / float64(directP50)
	if ratio >= 2 {
		b.Fatalf("HTTP overhead too high: warm http p50 %dns >= 2x direct p50 %dns (ratio %.2f)",
			httpP50, directP50, ratio)
	}

	st := srv.Stats()
	if st.Errors != 0 || st.Rejected != 0 || st.Canceled != 0 {
		b.Fatalf("bench daemon saw failures: %+v", st)
	}

	traj := pr10Trajectory{
		PR: 10, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		App: appName, Ports: len(order), Cells: len(order) * (len(order) - 1) / 2,

		ColdHTTPNs: coldNs,

		EngineOnlyP50Ns: benchPctile(engineLat, 50),
		EngineOnlyP99Ns: benchPctile(engineLat, 99),
		DirectP50Ns:     directP50,
		DirectP99Ns:     benchPctile(directLat, 99),
		HTTPP50Ns:       httpP50,
		HTTPP99Ns:       benchPctile(httpLat, 99),

		HTTPOverheadRatioP50: ratio,
		OverheadUnder2x:      ratio < 2,
		ByteIdenticalToCLI:   identical,

		Requests: st.Requests,

		Benchmarks: []benchTiming{engineLeg, directLeg, httpLeg},
	}
	benchWriteTrajectory(b, out, traj)
	b.Logf("cold http %.1fms; warm p50: engine-only %.2fms, direct %.2fms, http %.2fms (ratio %.2f); p99 http %.2fms",
		float64(coldNs)/1e6, float64(traj.EngineOnlyP50Ns)/1e6, float64(directP50)/1e6,
		float64(httpP50)/1e6, ratio, float64(traj.HTTPP99Ns)/1e6)
}
